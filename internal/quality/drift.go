package quality

import "time"

// DriftState is the hysteresis state machine's level: ok < warning < alarm.
type DriftState uint8

const (
	// DriftOK: the live window is statistically consistent with the baseline.
	DriftOK DriftState = iota
	// DriftWarning: divergence crossed the warn threshold — the mix is
	// shifting; retraining evidence is accumulating.
	DriftWarning
	// DriftAlarm: divergence crossed the alarm threshold — the live stream
	// no longer resembles what the models were trained on.
	DriftAlarm
)

var driftStateNames = [...]string{"ok", "warning", "alarm"}

// String returns the state's stable lowercase name (used as a /stats value
// and a report field).
func (s DriftState) String() string {
	if int(s) < len(driftStateNames) {
		return driftStateNames[s]
	}
	return "unknown"
}

// Value returns the state as a gauge (ok=0, warning=1, alarm=2), the
// /metrics companion of String.
func (s DriftState) Value() int { return int(s) }

// Transition is the outcome of one detector evaluation. Changed is false for
// the (overwhelmingly common) evaluations that hold state; callers emit
// obs/span events only on changes.
type Transition struct {
	Changed bool
	From    DriftState
	To      DriftState
	// Score is the divergence that drove the evaluation.
	Score float64
	// At is the clock reading at the transition (zero value when the
	// detector has no clock or nothing changed).
	At time.Time
}

// Options configure scoring windows and drift detection. The zero value of
// every field selects the documented default (mirroring the repo's
// zero=default convention); there are no rejected combinations, so there is
// no Normalize error path.
type Options struct {
	// WindowSize is the sliding score window per workload/replica. Default
	// 256.
	WindowSize int
	// EvalEvery is the drift evaluation cadence: one divergence computation
	// (and one decay of the live window) per EvalEvery observed plans.
	// Default 16.
	EvalEvery int
	// WarnPSI raises ok→warning when the divergence reaches it. Default
	// 0.25 (the conventional "significant shift" PSI reading — template
	// mixes this repo serves sit near 0 when stable).
	WarnPSI float64
	// AlarmPSI raises →alarm. Default 0.5.
	AlarmPSI float64
	// ClearAfter is the hysteresis on the way down: how many consecutive
	// sub-warn evaluations step the state down one level. Default 3.
	ClearAfter int
	// MinDwell is the minimum time a raised state holds before it may step
	// down, measured on Now. Zero (the default) disables the dwell — state
	// transitions are then purely evaluation-count driven, which is what
	// keeps replay-side drift detection deterministic.
	MinDwell time.Duration
	// Now is the clock behind MinDwell and transition stamps; nil means
	// time.Now. Tests inject a fake (the same convention as serve.Metrics).
	Now func() time.Time
}

// withDefaults resolves the zero-value convention.
func (o Options) withDefaults() Options {
	if o.WindowSize == 0 {
		o.WindowSize = 256
	}
	if o.EvalEvery == 0 {
		o.EvalEvery = 16
	}
	if o.WarnPSI == 0 {
		o.WarnPSI = 0.25
	}
	if o.AlarmPSI == 0 {
		o.AlarmPSI = 0.5
	}
	if o.ClearAfter == 0 {
		o.ClearAfter = 3
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Detector is the hysteresis state machine over a divergence-score stream.
// Raising is immediate (one breaching evaluation moves ok→warning or
// →alarm); clearing is slow (ClearAfter consecutive sub-warn evaluations,
// and at least MinDwell since the last raise, step down one level at a
// time) — a flapping mix alarms once, not once per window.
//
// Detector is not synchronized; the Monitor's owner serializes access (the
// replay scorer is single-threaded, the serve tier wraps it in a mutex).
type Detector struct {
	opts Options

	state       DriftState
	clearStreak int
	raisedAt    time.Time

	evals      uint64
	warnings   uint64
	alarms     uint64
	recoveries uint64
	lastScore  float64
}

// NewDetector returns a detector in DriftOK.
func NewDetector(o Options) *Detector { return &Detector{opts: o.withDefaults()} }

// Evaluate folds one divergence score into the state machine.
//
//pythia:noalloc
func (d *Detector) Evaluate(score float64) Transition {
	d.evals++
	d.lastScore = score
	target := DriftOK
	switch {
	case score >= d.opts.AlarmPSI:
		target = DriftAlarm
	case score >= d.opts.WarnPSI:
		target = DriftWarning
	}
	tr := Transition{From: d.state, To: d.state, Score: score}
	switch {
	case target > d.state:
		// Raise immediately, possibly skipping warning entirely.
		d.clearStreak = 0
		d.raisedAt = d.opts.Now()
		tr.To, tr.Changed, tr.At = target, true, d.raisedAt
		d.state = target
		switch target {
		case DriftAlarm:
			d.alarms++
		case DriftWarning:
			d.warnings++
		}
	case target < d.state:
		d.clearStreak++
		if d.clearStreak >= d.opts.ClearAfter && d.dwellElapsed() {
			d.clearStreak = 0
			d.state--
			tr.To, tr.Changed, tr.At = d.state, true, d.opts.Now()
			if d.state == DriftOK {
				d.recoveries++
			}
		}
	default:
		d.clearStreak = 0
	}
	return tr
}

// dwellElapsed reports whether the raised state has held for MinDwell.
//
//pythia:noalloc
func (d *Detector) dwellElapsed() bool {
	if d.opts.MinDwell <= 0 {
		return true
	}
	return d.opts.Now().Sub(d.raisedAt) >= d.opts.MinDwell
}

// State is the current drift level.
func (d *Detector) State() DriftState { return d.state }

// DriftStats is the detector's counter snapshot for /stats and reports.
type DriftStats struct {
	State       string  `json:"state"`
	StateValue  int     `json:"-"`
	Score       float64 `json:"score"`
	Evaluations uint64  `json:"evaluations"`
	Warnings    uint64  `json:"warnings"`
	Alarms      uint64  `json:"alarms"`
	Recoveries  uint64  `json:"recoveries"`
}

// Stats snapshots the detector.
func (d *Detector) Stats() DriftStats {
	return DriftStats{
		State:       d.state.String(),
		StateValue:  d.state.Value(),
		Score:       d.lastScore,
		Evaluations: d.evals,
		Warnings:    d.warnings,
		Alarms:      d.alarms,
		Recoveries:  d.recoveries,
	}
}

// Monitor streams plans against a frozen training baseline: each plan's
// tokens land in a decaying live Profile, and every EvalEvery plans the
// baseline↔live divergence runs through the hysteresis detector. Observe is
// allocation-free; the caller turns returned Transitions into obs events
// and span marks.
type Monitor struct {
	base      Profile
	live      Profile
	det       Detector
	evalEvery int
	sinceEval int
}

// NewMonitor builds a monitor against base. A nil base returns a nil
// monitor — drift detection off; all methods are nil-safe.
func NewMonitor(base *Profile, o Options) *Monitor {
	if base == nil {
		return nil
	}
	o = o.withDefaults()
	return &Monitor{base: *base, det: *NewDetector(o), evalEvery: o.EvalEvery}
}

// Observe folds one plan's serialized tokens into the live window and, at
// the evaluation cadence, scores it against the baseline. The zero
// Transition means "nothing changed".
//
//pythia:noalloc
func (m *Monitor) Observe(tokens []string) Transition {
	if m == nil {
		return Transition{}
	}
	m.live.ObserveTokens(tokens)
	m.sinceEval++
	if m.sinceEval < m.evalEvery {
		return Transition{}
	}
	m.sinceEval = 0
	tr := m.det.Evaluate(Divergence(&m.base, &m.live))
	m.live.Tokens.decay()
	m.live.Prints.decay()
	return tr
}

// Score is the divergence at the last evaluation (0 before the first).
func (m *Monitor) Score() float64 {
	if m == nil {
		return 0
	}
	return m.det.lastScore
}

// State is the current drift level (DriftOK for a nil monitor).
func (m *Monitor) State() DriftState {
	if m == nil {
		return DriftOK
	}
	return m.det.State()
}

// Stats snapshots the detector (zero value for a nil monitor, with state
// "ok" — drift-off reads as stable, not as a fourth state).
func (m *Monitor) Stats() DriftStats {
	if m == nil {
		return DriftStats{State: DriftOK.String()}
	}
	return m.det.Stats()
}

// Baseline returns a copy of the frozen baseline profile.
func (m *Monitor) Baseline() *Profile {
	if m == nil {
		return nil
	}
	return m.base.Clone()
}
