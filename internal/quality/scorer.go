package quality

import (
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/span"
	"github.com/pythia-db/pythia/internal/storage"
)

// EventCounts is the event-stream view of prefetch quality for one query (or
// an aggregate): what the run actually experienced, as opposed to the set
// math of what was predicted. Each field mirrors exactly one obs.Kind, so
// the scorer's numbers reconcile 1:1 with the obs counters by construction —
// the reconciliation test pins the identity.
type EventCounts struct {
	// Prefetched counts obs.PrefetchedIn: pages the prefetcher brought into
	// the buffer pool.
	Prefetched uint64 `json:"prefetched"`
	// Useful counts obs.PrefetchHit: prefetched frames the executor
	// consumed.
	Useful uint64 `json:"useful"`
	// Wasted counts obs.PrefetchWasted: prefetched frames evicted before any
	// use.
	Wasted uint64 `json:"wasted"`
	// Fallbacks counts obs.FallbackSyncRead: abandoned prefetches the
	// executor had to read synchronously.
	Fallbacks uint64 `json:"fallback_sync_reads"`
	// BufferMisses counts obs.BufferMiss: executor requests that missed the
	// pool (a prefetch hit is a buffer hit, so Useful and BufferMisses are
	// disjoint).
	BufferMisses uint64 `json:"buffer_misses"`
}

func (e *EventCounts) add(o EventCounts) {
	e.Prefetched += o.Prefetched
	e.Useful += o.Useful
	e.Wasted += o.Wasted
	e.Fallbacks += o.Fallbacks
	e.BufferMisses += o.BufferMisses
}

// Coverage is Useful/(Useful+BufferMisses): the fraction of would-be buffer
// misses the prefetcher converted into hits. 0 with no data.
func (e EventCounts) Coverage() float64 {
	d := e.Useful + e.BufferMisses
	if d == 0 {
		return 0
	}
	return float64(e.Useful) / float64(d)
}

// WastedRatio is Wasted/Prefetched: the fraction of prefetch I/O the
// executor never used before eviction. 0 with no data.
func (e EventCounts) WastedRatio() float64 {
	if e.Prefetched == 0 {
		return 0
	}
	return float64(e.Wasted) / float64(e.Prefetched)
}

// QueryScore is one query's quality record: the exact set overlap fixed at
// registration, plus the event counts accumulated while the query replayed.
type QueryScore struct {
	ID       string      `json:"id"`
	Workload string      `json:"workload,omitempty"`
	Set      Score       `json:"set"`
	Events   EventCounts `json:"events"`

	wl *workloadAgg
}

// workloadAgg accumulates one workload's totals across registered queries.
type workloadAgg struct {
	name    string
	queries int
	set     Score
	events  EventCounts
}

// Scorer scores one replay run (or a sequence of runs sharing one report):
// the harness registers every query's predicted and actual page sets in
// replay order, wires the scorer into the run's obs recorder chain, and
// feeds each plan's serialized tokens to the drift monitor. Registration
// allocates; Record and ObservePlan do not. Scorer is single-threaded, like
// the replay engine it observes.
type Scorer struct {
	opts      Options
	queries   []QueryScore
	workloads []*workloadAgg
	index     map[string]*workloadAgg
	monitor   *Monitor
	rec       obs.Recorder
	tracer    *span.Tracer
	runBase   int
}

// NewScorer returns an empty scorer. Options configure the drift detector
// armed later by SetBaseline.
func NewScorer(o Options) *Scorer {
	return &Scorer{opts: o.withDefaults(), index: map[string]*workloadAgg{}}
}

// SetBaseline arms drift detection against a frozen training profile (nil
// leaves it off).
func (s *Scorer) SetBaseline(base *Profile) { s.monitor = NewMonitor(base, s.opts) }

// Bind attaches the sinks drift transitions surface on: an obs recorder for
// DriftWarning/DriftAlarm/DriftRecovered events and a tracer for the
// matching span marks. Either may be nil.
func (s *Scorer) Bind(rec obs.Recorder, tracer *span.Tracer) {
	s.rec = rec
	s.tracer = tracer
}

// StartRun marks the start of a new replay run: subsequent obs events carry
// run-local query indexes, which Record resolves against the queries
// registered after this call. pythia.System.Run calls it; harnesses driving
// replay directly do the same.
func (s *Scorer) StartRun() { s.runBase = len(s.queries) }

// Register records one query's ground truth before it replays: the issued
// (buffer-bounded) prediction and the pages the executor's script actually
// needs. Must be called once per query, in spec order, between StartRun and
// the replay. The exact set overlap is computed here, off the hot path.
func (s *Scorer) Register(id, workload string, predicted, actual []storage.PageID) {
	q := QueryScore{ID: id, Workload: workload, Set: ScoreSets(predicted, actual)}
	agg := s.index[workload]
	if agg == nil {
		agg = &workloadAgg{name: workload}
		s.index[workload] = agg
		s.workloads = append(s.workloads, agg)
	}
	agg.queries++
	agg.set.add(q.Set)
	q.wl = agg
	s.queries = append(s.queries, q)
	if s.rec != nil {
		s.rec.Record(obs.Event{Kind: obs.QualityScored, Query: obs.NoQuery})
	}
}

// ObservePlan feeds one plan's serialized tokens to the drift monitor and
// surfaces any state transition as obs events and span marks. No-op until
// SetBaseline arms the monitor.
//
//pythia:noalloc
func (s *Scorer) ObservePlan(tokens []string) {
	tr := s.monitor.Observe(tokens)
	if !tr.Changed {
		return
	}
	if s.rec != nil {
		s.rec.Record(obs.Event{Kind: DriftEventKind(tr.To), Query: obs.NoQuery})
	}
	if s.tracer != nil {
		s.tracer.Instant(DriftMarkKind(tr.To), storage.PageID{}, 0)
	}
}

// DriftEventKind maps a post-transition state to its obs event — shared by
// the replay scorer and the serve tier's per-replica monitors so both emit
// the same event vocabulary.
//
//pythia:noalloc
func DriftEventKind(to DriftState) obs.Kind {
	switch to {
	case DriftAlarm:
		return obs.DriftAlarm
	case DriftWarning:
		return obs.DriftWarning
	default:
		return obs.DriftRecovered
	}
}

// DriftMarkKind maps a post-transition state to its span mark.
//
//pythia:noalloc
func DriftMarkKind(to DriftState) span.Kind {
	switch to {
	case DriftAlarm:
		return span.DriftAlarmMark
	case DriftWarning:
		return span.DriftWarningMark
	default:
		return span.DriftRecoveredMark
	}
}

// Record implements obs.Recorder: query-attributed prefetch-quality events
// land on the registered query (and its workload aggregate). Everything else
// passes through untouched — the scorer is an observer, never a filter.
//
//pythia:noalloc
func (s *Scorer) Record(e obs.Event) {
	if e.Query < 0 {
		return
	}
	i := s.runBase + int(e.Query)
	if i >= len(s.queries) {
		return
	}
	q := &s.queries[i]
	switch e.Kind {
	case obs.PrefetchedIn:
		q.Events.Prefetched++
		q.wl.events.Prefetched++
	case obs.PrefetchHit:
		q.Events.Useful++
		q.wl.events.Useful++
	case obs.PrefetchWasted:
		q.Events.Wasted++
		q.wl.events.Wasted++
	case obs.FallbackSyncRead:
		q.Events.Fallbacks++
		q.wl.events.Fallbacks++
	case obs.BufferMiss:
		q.Events.BufferMisses++
		q.wl.events.BufferMisses++
	}
}

// WorkloadReport is one workload's aggregate quality in a Report.
type WorkloadReport struct {
	Workload    string      `json:"workload"`
	Queries     int         `json:"queries"`
	Set         Score       `json:"set"`
	Precision   float64     `json:"precision"`
	Recall      float64     `json:"recall"`
	Coverage    float64     `json:"coverage"`
	WastedRatio float64     `json:"wasted_ratio"`
	Events      EventCounts `json:"events"`
}

// Report is the scorer's end-of-run summary.
type Report struct {
	// Queries holds one row per registered query, in replay order.
	Queries []QueryScore `json:"queries"`
	// Workloads holds per-workload aggregates in first-seen order (the
	// fallback pseudo-workload, when present, has Workload "").
	Workloads []WorkloadReport `json:"workloads"`
	// Total aggregates everything.
	Total WorkloadReport `json:"total"`
	// Drift is the detector snapshot (state "ok" with zero counters when
	// drift detection was never armed).
	Drift DriftStats `json:"drift"`
	// BaselineHash identifies the baseline the drift score was measured
	// against ("" when unarmed).
	BaselineHash string `json:"baseline_hash,omitempty"`
}

// workloadReport renders one aggregate.
func workloadReport(name string, queries int, set Score, ev EventCounts) WorkloadReport {
	return WorkloadReport{
		Workload:    name,
		Queries:     queries,
		Set:         set,
		Precision:   set.Precision(),
		Recall:      set.Recall(),
		Coverage:    ev.Coverage(),
		WastedRatio: ev.WastedRatio(),
		Events:      ev,
	}
}

// Report assembles the summary. Call it after the run(s) complete.
func (s *Scorer) Report() *Report {
	r := &Report{Queries: s.queries, Drift: s.monitor.Stats()}
	var totSet Score
	var totEv EventCounts
	totQ := 0
	for _, agg := range s.workloads {
		r.Workloads = append(r.Workloads, workloadReport(agg.name, agg.queries, agg.set, agg.events))
		totSet.add(agg.set)
		totEv.add(agg.events)
		totQ += agg.queries
	}
	r.Total = workloadReport("total", totQ, totSet, totEv)
	if s.monitor != nil {
		r.BaselineHash = s.monitor.Baseline().HashString()
	}
	return r
}
