package quality

import (
	"math"
	"testing"
	"time"

	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/storage"
)

func pg(obj, page uint32) storage.PageID {
	return storage.PageID{Object: storage.ObjectID(obj), Page: storage.PageNum(page)}
}

func TestScoreSets(t *testing.T) {
	cases := []struct {
		name         string
		pred, act    []storage.PageID
		want         Score
		wantP, wantR float64
	}{
		{
			name:  "exact overlap",
			pred:  []storage.PageID{pg(1, 1), pg(1, 2), pg(1, 3)},
			act:   []storage.PageID{pg(1, 1), pg(1, 2), pg(1, 3)},
			want:  Score{Predicted: 3, Actual: 3, TruePos: 3},
			wantP: 1, wantR: 1,
		},
		{
			name:  "partial, unsorted, duplicated inputs",
			pred:  []storage.PageID{pg(2, 9), pg(1, 1), pg(2, 9), pg(1, 5)},
			act:   []storage.PageID{pg(1, 5), pg(1, 5), pg(3, 1), pg(1, 1)},
			want:  Score{Predicted: 3, Actual: 3, TruePos: 2},
			wantP: 2.0 / 3, wantR: 2.0 / 3,
		},
		{
			name:  "disjoint",
			pred:  []storage.PageID{pg(1, 1)},
			act:   []storage.PageID{pg(2, 2)},
			want:  Score{Predicted: 1, Actual: 1, TruePos: 0},
			wantP: 0, wantR: 0,
		},
		{
			name:  "empty prediction is vacuously precise",
			pred:  nil,
			act:   []storage.PageID{pg(1, 1)},
			want:  Score{Predicted: 0, Actual: 1, TruePos: 0},
			wantP: 1, wantR: 0,
		},
		{
			name:  "empty ground truth is vacuously recalled",
			pred:  []storage.PageID{pg(1, 1)},
			act:   nil,
			want:  Score{Predicted: 1, Actual: 0, TruePos: 0},
			wantP: 0, wantR: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ScoreSets(tc.pred, tc.act)
			if got != tc.want {
				t.Fatalf("ScoreSets = %+v, want %+v", got, tc.want)
			}
			if p := got.Precision(); math.Abs(p-tc.wantP) > 1e-12 {
				t.Errorf("precision = %v, want %v", p, tc.wantP)
			}
			if r := got.Recall(); math.Abs(r-tc.wantR) > 1e-12 {
				t.Errorf("recall = %v, want %v", r, tc.wantR)
			}
		})
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(2)
	if w.Precision() != 0 || w.Recall() != 0 {
		t.Fatalf("empty window must report 0 quality, got p=%v r=%v", w.Precision(), w.Recall())
	}
	w.Add(Score{Predicted: 10, Actual: 10, TruePos: 0}) // terrible
	w.Add(Score{Predicted: 4, Actual: 4, TruePos: 4})
	w.Add(Score{Predicted: 4, Actual: 4, TruePos: 4}) // evicts the terrible one
	if w.Len() != 2 || w.Seen() != 3 {
		t.Fatalf("Len=%d Seen=%d, want 2, 3", w.Len(), w.Seen())
	}
	if got := (Score{Predicted: 8, Actual: 8, TruePos: 8}); w.Sums() != got {
		t.Fatalf("Sums = %+v, want %+v", w.Sums(), got)
	}
	if w.Precision() != 1 || w.Recall() != 1 {
		t.Fatalf("post-eviction p=%v r=%v, want 1, 1", w.Precision(), w.Recall())
	}
}

func TestPSI(t *testing.T) {
	var a, b Sketch
	for i := uint64(0); i < 1000; i++ {
		a.Observe(i % 7)
		b.Observe(i % 7)
	}
	if psi := PSI(&a, &b); psi > 1e-9 {
		t.Fatalf("identical sketches: PSI = %v, want ~0", psi)
	}
	var c Sketch
	for i := uint64(0); i < 1000; i++ {
		c.Observe(1_000_000 + i%7) // different support entirely
	}
	if psi := PSI(&a, &c); psi < 1 {
		t.Fatalf("disjoint sketches: PSI = %v, want >= 1", psi)
	}
	var empty Sketch
	if psi := PSI(&empty, &empty); psi != 0 {
		t.Fatalf("empty sketches: PSI = %v, want 0", psi)
	}
}

func TestProfileHashStable(t *testing.T) {
	var a, b Profile
	a.ObserveTokens([]string{"Seq", "tbl", "Join"})
	b.ObserveTokens([]string{"Seq", "tbl", "Join"})
	if a.Hash() != b.Hash() {
		t.Fatal("identical streams must hash identically")
	}
	b.ObserveTokens([]string{"Seq"})
	if a.Hash() == b.Hash() {
		t.Fatal("diverged streams must hash differently")
	}
	if len(a.HashString()) != 16 {
		t.Fatalf("HashString = %q, want 16 hex chars", a.HashString())
	}
}

// TestDetectorHysteresis drives the state machine with a fake clock through
// the full warning→alarm→recovered arc, checking both the ClearAfter streak
// and the MinDwell clock gate.
func TestDetectorHysteresis(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	d := NewDetector(Options{
		WarnPSI: 0.25, AlarmPSI: 0.5, ClearAfter: 2,
		MinDwell: 10 * time.Second, Now: clock,
	})

	// ok → warning raises immediately.
	tr := d.Evaluate(0.3)
	if !tr.Changed || tr.From != DriftOK || tr.To != DriftWarning {
		t.Fatalf("warn raise: %+v", tr)
	}
	// warning → alarm raises immediately.
	tr = d.Evaluate(0.9)
	if !tr.Changed || tr.From != DriftWarning || tr.To != DriftAlarm {
		t.Fatalf("alarm raise: %+v", tr)
	}
	// One clean reading is not enough (ClearAfter=2)…
	if tr = d.Evaluate(0.01); tr.Changed {
		t.Fatalf("cleared after one sub-warn eval: %+v", tr)
	}
	// …and even the second is held back by MinDwell.
	if tr = d.Evaluate(0.01); tr.Changed {
		t.Fatalf("cleared before MinDwell elapsed: %+v", tr)
	}
	now = now.Add(11 * time.Second)
	// A breaching reading resets the clear streak.
	if tr = d.Evaluate(0.9); tr.Changed {
		t.Fatalf("unexpected transition on re-breach: %+v", tr)
	}
	// Two consecutive clean readings past the dwell step down one level…
	d.Evaluate(0.01)
	tr = d.Evaluate(0.01)
	if !tr.Changed || tr.To != DriftWarning {
		t.Fatalf("step down to warning: %+v", tr)
	}
	// …and two more land back at ok, counting one recovery.
	d.Evaluate(0.01)
	tr = d.Evaluate(0.01)
	if !tr.Changed || tr.To != DriftOK {
		t.Fatalf("step down to ok: %+v", tr)
	}
	st := d.Stats()
	if st.State != "ok" || st.Warnings != 1 || st.Alarms != 1 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMonitorDetectsShift(t *testing.T) {
	base := &Profile{}
	for i := 0; i < 200; i++ {
		base.ObserveTokens([]string{"Seq", "lineitem", "Agg"})
	}
	// Same mix: no drift, ever.
	m := NewMonitor(base, Options{EvalEvery: 4})
	for i := 0; i < 200; i++ {
		if tr := m.Observe([]string{"Seq", "lineitem", "Agg"}); tr.Changed {
			t.Fatalf("drift fired on the training mix at plan %d: %+v", i, tr)
		}
	}
	if m.State() != DriftOK {
		t.Fatalf("state = %v after training mix, want ok", m.State())
	}
	// Held-out mix: alarm must fire.
	m2 := NewMonitor(base, Options{EvalEvery: 4})
	fired := false
	for i := 0; i < 200; i++ {
		tr := m2.Observe([]string{"Idx", "orders", "NestLoop", "Sort"})
		if tr.Changed && tr.To == DriftAlarm {
			fired = true
		}
	}
	if !fired || m2.State() != DriftAlarm {
		t.Fatalf("held-out mix: fired=%v state=%v, want alarm", fired, m2.State())
	}

	// Nil-baseline monitor is inert.
	var nilMon *Monitor
	if tr := nilMon.Observe([]string{"x"}); tr.Changed || nilMon.State() != DriftOK {
		t.Fatal("nil monitor must be inert")
	}
	if st := nilMon.Stats(); st.State != "ok" {
		t.Fatalf("nil monitor stats state = %q, want ok", st.State)
	}
}

func TestScorerRecordAndReport(t *testing.T) {
	s := NewScorer(Options{})
	s.StartRun()
	s.Register("q0", "wl_a", []storage.PageID{pg(1, 1), pg(1, 2)}, []storage.PageID{pg(1, 1), pg(1, 3)})
	s.Register("q1", "wl_b", []storage.PageID{pg(2, 1)}, []storage.PageID{pg(2, 1)})

	s.Record(obs.Event{Kind: obs.PrefetchedIn, Query: 0})
	s.Record(obs.Event{Kind: obs.PrefetchedIn, Query: 0})
	s.Record(obs.Event{Kind: obs.PrefetchHit, Query: 0})
	s.Record(obs.Event{Kind: obs.PrefetchWasted, Query: 0})
	s.Record(obs.Event{Kind: obs.BufferMiss, Query: 0})
	s.Record(obs.Event{Kind: obs.PrefetchedIn, Query: 1})
	s.Record(obs.Event{Kind: obs.PrefetchHit, Query: 1})
	// System-level and out-of-range events are ignored, not misattributed.
	s.Record(obs.Event{Kind: obs.PrefetchedIn, Query: obs.NoQuery})
	s.Record(obs.Event{Kind: obs.PrefetchedIn, Query: 99})

	r := s.Report()
	if len(r.Queries) != 2 || len(r.Workloads) != 2 {
		t.Fatalf("report shape: %d queries, %d workloads", len(r.Queries), len(r.Workloads))
	}
	q0 := r.Queries[0]
	if q0.Set != (Score{Predicted: 2, Actual: 2, TruePos: 1}) {
		t.Fatalf("q0 set = %+v", q0.Set)
	}
	if q0.Events != (EventCounts{Prefetched: 2, Useful: 1, Wasted: 1, BufferMisses: 1}) {
		t.Fatalf("q0 events = %+v", q0.Events)
	}
	if r.Total.Events.Prefetched != 3 || r.Total.Set.TruePos != 2 {
		t.Fatalf("totals = %+v", r.Total)
	}
	if cov := r.Total.Coverage; math.Abs(cov-2.0/3) > 1e-12 {
		t.Fatalf("coverage = %v, want 2/3", cov)
	}
	if r.Drift.State != "ok" {
		t.Fatalf("unarmed drift state = %q, want ok", r.Drift.State)
	}

	// A second run re-bases obs query indexes.
	s.StartRun()
	s.Register("q0-run2", "wl_a", nil, nil)
	s.Record(obs.Event{Kind: obs.FallbackSyncRead, Query: 0})
	r = s.Report()
	if r.Queries[2].Events.Fallbacks != 1 || r.Queries[0].Events.Fallbacks != 0 {
		t.Fatalf("run re-basing misattributed events: %+v vs %+v", r.Queries[2].Events, r.Queries[0].Events)
	}
}

// TestHotPathsNoAlloc pins the acceptance criterion: scoring and sketch
// updates on the hot path are allocation-free.
func TestHotPathsNoAlloc(t *testing.T) {
	w := NewWindow(8)
	sc := Score{Predicted: 4, Actual: 4, TruePos: 3}
	if n := testing.AllocsPerRun(200, func() { w.Add(sc) }); n != 0 {
		t.Errorf("Window.Add allocates %v/op", n)
	}

	var sk Sketch
	if n := testing.AllocsPerRun(200, func() { sk.Observe(42) }); n != 0 {
		t.Errorf("Sketch.Observe allocates %v/op", n)
	}

	var prof Profile
	tokens := []string{"Seq", "lineitem", "Agg", "Sort"}
	if n := testing.AllocsPerRun(200, func() { prof.ObserveTokens(tokens) }); n != 0 {
		t.Errorf("Profile.ObserveTokens allocates %v/op", n)
	}

	base := prof.Clone()
	m := NewMonitor(base, Options{EvalEvery: 2})
	if n := testing.AllocsPerRun(200, func() { m.Observe(tokens) }); n != 0 {
		t.Errorf("Monitor.Observe allocates %v/op", n)
	}

	d := NewDetector(Options{Now: time.Now})
	if n := testing.AllocsPerRun(200, func() { d.Evaluate(0.01) }); n != 0 {
		t.Errorf("Detector.Evaluate allocates %v/op", n)
	}

	var liveP, liveB Profile
	liveP.ObserveTokens(tokens)
	if n := testing.AllocsPerRun(200, func() { _ = Divergence(&liveB, &liveP) }); n != 0 {
		t.Errorf("Divergence allocates %v/op", n)
	}

	s := NewScorer(Options{})
	s.StartRun()
	s.Register("q", "wl", []storage.PageID{pg(1, 1)}, []storage.PageID{pg(1, 1)})
	ev := obs.Event{Kind: obs.PrefetchHit, Query: 0}
	if n := testing.AllocsPerRun(200, func() { s.Record(ev) }); n != 0 {
		t.Errorf("Scorer.Record allocates %v/op", n)
	}
}
