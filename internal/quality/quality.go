// Package quality is the prediction-quality and workload-drift measurement
// layer: the evidence stream ROADMAP item 4's online-learning loop will
// consume, available today as scrape-able telemetry.
//
// Two concerns live here, deliberately decoupled from where predictions come
// from:
//
//   - Scoring. A prediction is a page set; ground truth is the page set the
//     executor actually touched. ScoreSets computes the exact set overlap
//     (precision = fraction of prefetched pages that were needed, recall =
//     fraction of needed pages that were prefetched); Window keeps a
//     fixed-size sliding window of scores with O(1) rolling sums so the
//     serving tier reports fresh quality without unbounded state. The replay
//     Scorer additionally reconciles set math against the obs event stream
//     (useful/wasted prefetch, fallback sync reads) — the two views are tied
//     by exact counter identities, pinned by test.
//
//   - Drift. A Profile is a pair of fixed-size hashed histograms (Sketch)
//     over a plan stream: one over serialized plan tokens, one over whole-plan
//     fingerprints. Training freezes a baseline Profile into the snapshot
//     envelope; a Monitor accumulates the live stream into a decaying window
//     Profile and, every EvalEvery plans, computes a Population Stability
//     Index between baseline and window. A hysteresis Detector turns the
//     score stream into ok → warning → alarm state transitions that the
//     caller surfaces as obs.DriftWarning/DriftAlarm/DriftRecovered events.
//
// Design constraints mirror the obs package: the hot paths — recording one
// event, observing one plan into the sketches, adding one score to a window —
// are //pythia:noalloc and allocation-free, so quality observation never
// perturbs a replay timeline or a serving request. Everything that allocates
// (registration, report assembly) happens off the hot path.
package quality

import "github.com/pythia-db/pythia/internal/storage"

// Score is the exact set overlap of one prediction against ground truth.
type Score struct {
	// Predicted is |P|: pages the prediction issued.
	Predicted int
	// Actual is |A|: distinct pages the executor actually needed.
	Actual int
	// TruePos is |P ∩ A|: predicted pages that were needed.
	TruePos int
}

// Precision is TruePos/Predicted — the fraction of prefetched pages that
// were needed. An empty prediction is vacuously precise (nothing was wasted).
func (s Score) Precision() float64 {
	if s.Predicted == 0 {
		return 1
	}
	return float64(s.TruePos) / float64(s.Predicted)
}

// Recall is TruePos/Actual — the fraction of needed pages that were
// prefetched. A query that needed nothing is vacuously recalled.
func (s Score) Recall() float64 {
	if s.Actual == 0 {
		return 1
	}
	return float64(s.TruePos) / float64(s.Actual)
}

// WastedRatio is 1 − precision: the fraction of prefetched pages the
// executor never needed.
func (s Score) WastedRatio() float64 { return 1 - s.Precision() }

// add folds another score into this one (component-wise sums, for
// aggregates).
func (s *Score) add(o Score) {
	s.Predicted += o.Predicted
	s.Actual += o.Actual
	s.TruePos += o.TruePos
}

// ScoreSets computes the exact overlap of a predicted page set against the
// actually-accessed set. Neither input need be sorted or duplicate-free; the
// function copies and canonicalizes both, so it allocates — call it at query
// registration or feedback time, never per event.
func ScoreSets(predicted, actual []storage.PageID) Score {
	p := canonical(predicted)
	a := canonical(actual)
	s := Score{Predicted: len(p), Actual: len(a)}
	i, j := 0, 0
	for i < len(p) && j < len(a) {
		switch {
		case p[i] == a[j]:
			s.TruePos++
			i++
			j++
		case p[i].Less(a[j]):
			i++
		default:
			j++
		}
	}
	return s
}

// canonical returns a sorted, deduplicated copy of pages.
func canonical(pages []storage.PageID) []storage.PageID {
	if len(pages) == 0 {
		return nil
	}
	out := make([]storage.PageID, len(pages))
	copy(out, pages)
	// Insertion sort territory is rare (predicted sets run hundreds of
	// pages); use a simple in-place quicksort-free approach via sort-by-Less.
	sortPageIDs(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// sortPageIDs sorts in (Object, Page) order without pulling in sort's
// interface boxing for a hot-adjacent path.
func sortPageIDs(p []storage.PageID) {
	if len(p) < 2 {
		return
	}
	// Heapsort: in-place, no allocation, deterministic.
	n := len(p)
	for i := n/2 - 1; i >= 0; i-- {
		siftPageIDs(p, i, n)
	}
	for i := n - 1; i > 0; i-- {
		p[0], p[i] = p[i], p[0]
		siftPageIDs(p, 0, i)
	}
}

func siftPageIDs(p []storage.PageID, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && p[child].Less(p[child+1]) {
			child++
		}
		if !p[root].Less(p[child]) {
			return
		}
		p[root], p[child] = p[child], p[root]
		root = child
	}
}

// Window is a fixed-size sliding window of Scores with O(1) rolling sums:
// the serving tier's freshness-bounded quality view. Construct with
// NewWindow; Add is allocation-free.
type Window struct {
	ring []Score
	next int
	n    int
	sums Score  // component sums over the resident window
	seen uint64 // lifetime scores added (not windowed)
}

// NewWindow returns a window holding the last size scores (minimum 1).
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{ring: make([]Score, size)}
}

// Add inserts one score, evicting the oldest past capacity.
//
//pythia:noalloc
func (w *Window) Add(s Score) {
	if w.n == len(w.ring) {
		old := w.ring[w.next]
		w.sums.Predicted -= old.Predicted
		w.sums.Actual -= old.Actual
		w.sums.TruePos -= old.TruePos
	} else {
		w.n++
	}
	w.ring[w.next] = s
	w.next = (w.next + 1) % len(w.ring)
	w.sums.add(s)
	w.seen++
}

// Len is the number of scores resident in the window.
func (w *Window) Len() int { return w.n }

// Seen is the lifetime number of scores added.
func (w *Window) Seen() uint64 { return w.seen }

// Sums returns the component sums over the resident window.
func (w *Window) Sums() Score { return w.sums }

// Precision is the windowed micro-averaged precision (sums over the window,
// not a mean of ratios, so large predictions weigh more). An empty window
// reports 0 — "no data" must not render as perfect quality on a dashboard.
func (w *Window) Precision() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sums.Precision()
}

// Recall is the windowed micro-averaged recall (0 when empty).
func (w *Window) Recall() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sums.Recall()
}
