package pythia

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/pythia-db/pythia/internal/predictor"
	"github.com/pythia-db/pythia/internal/workload"
)

// persistFixture trains one t91 system shared by the round-trip tests —
// training dominates their runtime (especially under -race) and both tests
// only read from the trained system.
var persistFixture struct {
	once sync.Once
	sys  *System
	test []*workload.Instance
}

func trainedSystem(t *testing.T) (*System, []*workload.Instance) {
	t.Helper()
	persistFixture.once.Do(func() {
		s, w := testSystem(t)
		train, test := w.Split(0.15, 3)
		s.Train("t91", train)
		persistFixture.sys = s
		persistFixture.test = test
	})
	if persistFixture.sys == nil {
		t.Fatal("shared persist fixture failed to build")
	}
	return persistFixture.sys, persistFixture.test
}

func TestSaveLoadWorkloadRoundTrip(t *testing.T) {
	s, test := trainedSystem(t)

	var buf bytes.Buffer
	if err := s.SaveWorkload("t91", &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty persisted workload")
	}

	// A fresh system over the same database loads the workload and predicts
	// identically.
	s2 := New(s.DB, s.Config())
	tw, err := s2.LoadWorkload(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tw.Name != "t91" {
		t.Fatalf("loaded workload name %q", tw.Name)
	}
	for _, inst := range test {
		a := s.Prefetch(inst)
		b := s2.Prefetch(inst)
		if len(a) != len(b) {
			t.Fatalf("loaded predictor differs: %d vs %d pages", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("loaded predictor differs in content")
			}
		}
	}
	// Matching metadata survived: an untagged same-relations query matches.
	q := test[0].Query
	q.Template = ""
	if s2.Match(q) != tw {
		t.Fatal("loaded workload does not match by relation set")
	}
}

func TestSaveLoadSystemRoundTrip(t *testing.T) {
	s, test := trainedSystem(t)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty system snapshot")
	}

	// Two independent loads of the same bundle (the replica-pool shape) both
	// predict exactly like the system that saved it.
	for copyN := 0; copyN < 2; copyN++ {
		s2, err := LoadSystem(s.DB, s.Config(), bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(s2.Workloads()) != 1 || s2.Workloads()[0].Name != "t91" {
			t.Fatalf("loaded system workloads wrong: %+v", s2.Workloads())
		}
		// The loaded predictor is an independent instance, not a shared
		// pointer into the source system.
		if s2.Workloads()[0].Pred == s.Workloads()[0].Pred {
			t.Fatal("loaded system shares the saved system's predictor")
		}
		for _, inst := range test {
			a := s.Prefetch(inst)
			b := s2.Prefetch(inst)
			if len(a) != len(b) {
				t.Fatalf("loaded system differs: %d vs %d pages", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("loaded system differs in content")
				}
			}
		}
	}
}

func TestLoadSystemGarbageErrors(t *testing.T) {
	s, _ := testSystem(t)
	if _, err := LoadSystem(s.DB, s.Config(), bytes.NewReader([]byte("junk"))); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("loading garbage system snapshot: %v, want ErrSnapshotCorrupt", err)
	}
}

func TestLoadSystemCorruptAndTruncated(t *testing.T) {
	s, _ := trainedSystem(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"zero-length":       {},
		"header-truncated":  good[:7],
		"payload-truncated": good[:len(good)/2],
		"footer-truncated":  good[:len(good)-2],
		"trailing-garbage":  append(append([]byte{}, good...), 0xAA),
	}
	// A single flipped payload bit must trip the CRC footer.
	flipped := append([]byte{}, good...)
	flipped[len(flipped)/2] ^= 0x01
	cases["bit-flip"] = flipped
	// Wrong magic: damage the leading frame bytes.
	wrongMagic := append([]byte{}, good...)
	wrongMagic[0] = 'X'
	cases["bad-magic"] = wrongMagic

	for name, data := range cases {
		if _, err := LoadSystem(s.DB, s.Config(), bytes.NewReader(data)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: LoadSystem error %v, want ErrSnapshotCorrupt", name, err)
		}
	}
	// The workload loader shares the frame, so it rejects the same damage.
	if _, err := s.LoadWorkload(bytes.NewReader(nil)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("LoadWorkload(empty): %v, want ErrSnapshotCorrupt", err)
	}
}

func TestLoadSystemVersionMismatch(t *testing.T) {
	s, _ := trainedSystem(t)
	// Re-frame a structurally valid payload that declares a future version:
	// the envelope checks pass, so the typed version error must surface.
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&persistedSystem{Version: persistVersion + 1}); err != nil {
		t.Fatal(err)
	}
	var framed bytes.Buffer
	if err := sealEnvelope(&framed, payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSystem(s.DB, s.Config(), bytes.NewReader(framed.Bytes())); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("future-version snapshot: %v, want ErrSnapshotVersion", err)
	}
}

func TestSaveFileAtomicRoundTrip(t *testing.T) {
	s, test := trainedSystem(t)
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwriting an existing snapshot goes through the same temp+rename
	// path; afterwards no temp residue remains.
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "snap.bin" {
		t.Fatalf("snapshot dir has residue: %v", entries)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s2, err := LoadSystem(s.DB, s.Config(), f)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range test[:3] {
		a, b := s.Prefetch(inst), s2.Prefetch(inst)
		if len(a) != len(b) {
			t.Fatalf("SaveFile round trip differs: %d vs %d pages", len(a), len(b))
		}
	}
}

func TestSaveUnknownWorkloadErrors(t *testing.T) {
	s, _ := testSystem(t)
	var buf bytes.Buffer
	if err := s.SaveWorkload("nope", &buf); err == nil {
		t.Fatal("saving unknown workload did not error")
	}
}

func TestLoadGarbageErrors(t *testing.T) {
	s, _ := testSystem(t)
	if _, err := s.LoadWorkload(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("loading garbage did not error")
	}
}

func TestPredictorUpdateImproves(t *testing.T) {
	s, w := testSystem(t)
	// Train on a sliver, then incrementally update with the rest; accuracy
	// on held-out queries should not get worse and typically improves.
	train, test := w.Split(0.15, 3)
	tiny := train[:8]
	rest := train[8:]
	tw := s.Train("t91", tiny)

	scoreSum := func() float64 {
		total := 0.0
		for _, inst := range test {
			pred := s.Prefetch(inst)
			inter := 0
			truth := map[string]bool{}
			for _, p := range inst.Pages {
				truth[p.String()] = true
			}
			for _, p := range pred {
				if truth[p.String()] {
					inter++
				}
			}
			denom := len(pred) + len(inst.Pages)
			if denom > 0 {
				total += 2 * float64(inter) / float64(denom)
			}
		}
		return total
	}
	before := scoreSum()
	var samples []predictor.TrainSample
	for _, inst := range rest {
		samples = append(samples, predictor.TrainSample{Plan: inst.Plan, Trace: inst.Trace})
	}
	tw.Pred.Update(samples, 10)
	after := scoreSum()
	if after < before-0.3 {
		t.Fatalf("incremental update degraded accuracy: %.3f -> %.3f", before, after)
	}
}
