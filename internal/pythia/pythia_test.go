package pythia

import (
	"testing"

	"github.com/pythia-db/pythia/internal/baselines"
	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/metrics"
	"github.com/pythia-db/pythia/internal/model"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/predictor"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/workload"
)

func testConfig() Config {
	cfg := DefaultConfig()
	mcfg := model.DefaultConfig()
	mcfg.Dim = 16
	mcfg.Heads = 2
	mcfg.Layers = 1
	mcfg.DecoderHidden = 32
	mcfg.Epochs = 20
	cfg.Predictor = predictor.Options{Model: mcfg, ObservedOnly: true}
	cfg.Replay.BufferPages = 1024
	return cfg
}

func testSystem(t *testing.T) (*System, *workload.Workload) {
	t.Helper()
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 8, Seed: 7})
	w := g.Workload("t91", 40, 1)
	s := New(g.DB(), testConfig())
	return s, w
}

func TestTrainAndMatchByTemplate(t *testing.T) {
	s, w := testSystem(t)
	train, test := w.Split(0.1, 3)
	tw := s.Train("t91", train)
	if tw.Pred == nil {
		t.Fatal("no predictor trained")
	}
	if got := s.Match(test[0].Query); got != tw {
		t.Fatal("test query did not match its workload")
	}
	// A query from an unrelated fact does not match (fallback path).
	foreign := plan.Query{Fact: "inventory", Template: "t-unknown"}
	if s.Match(foreign) != nil {
		t.Fatal("unrelated query matched a workload")
	}
}

func TestMatchByRelationSet(t *testing.T) {
	s, w := testSystem(t)
	train, _ := w.Split(0.1, 3)
	tw := s.Train("t91", train)
	// Same relations, no template tag: the Jaccard fallback should match.
	q := w.Instances[0].Query
	q.Template = ""
	if s.Match(q) != tw {
		t.Fatal("relation-set matching failed")
	}
}

func TestPrefetchFallbackForUnknownWorkload(t *testing.T) {
	s, w := testSystem(t)
	train, _ := w.Split(0.1, 3)
	s.Train("t91", train)
	inst := *w.Instances[0]
	inst.Query.Template = "zzz"
	inst.Query.Fact = "inventory"
	inst.Query.Dims = nil
	if got := s.Prefetch(&inst); got != nil {
		t.Fatal("fallback query still got a prefetch set")
	}
}

func TestPythiaSpeedsUpUnseenQueries(t *testing.T) {
	s, w := testSystem(t)
	train, test := w.Split(0.1, 3)
	s.Train("t91", train)

	var speedups, f1s []float64
	for _, inst := range test {
		pred := s.Prefetch(inst)
		f1s = append(f1s, metrics.Score(pred, inst.Pages).F1)
		speedups = append(speedups, s.SpeedupColdCache(inst, s.Prefetch))
	}
	meanF1 := metrics.Summarize(f1s).Mean
	meanSp := metrics.Summarize(speedups).Mean
	if meanF1 < 0.3 {
		t.Fatalf("Pythia unseen F1 = %.3f", meanF1)
	}
	if meanSp < 1.05 {
		t.Fatalf("Pythia speedup = %.2fx, want > 1.05x", meanSp)
	}
	// Oracle bounds Pythia (up to simulation noise).
	var orclSp []float64
	for _, inst := range test {
		orclSp = append(orclSp, s.SpeedupColdCache(inst, baselines.Oracle))
	}
	if metrics.Summarize(orclSp).Mean < meanSp*0.8 {
		t.Fatalf("oracle (%.2fx) should roughly bound Pythia (%.2fx)",
			metrics.Summarize(orclSp).Mean, meanSp)
	}
}

func TestLimitPrefetchBounds(t *testing.T) {
	s, w := testSystem(t)
	var big []storage.PageID
	for _, inst := range w.Instances {
		big = append(big, inst.Pages...)
	}
	if len(big) == 0 {
		// Synthesize pages if the tiny workload produced none.
		for i := 0; i < 8; i++ {
			big = append(big, storage.PageID{Object: 1, Page: storage.PageNum(i)})
		}
	}
	for len(big) < s.cfg.Replay.BufferPages {
		big = append(big, big...)
	}
	limited := s.LimitPrefetch(big)
	budget := int(float64(s.cfg.Replay.BufferPages) * s.cfg.PrefetchBufferFraction)
	if len(limited) != budget {
		t.Fatalf("limited prefetch = %d pages, want %d", len(limited), budget)
	}
}

func TestRunArrivalsAndStrategies(t *testing.T) {
	s, w := testSystem(t)
	insts := w.Instances[:3]
	res := s.Run(insts, []sim.Duration{0, 0, 0}, baselines.Oracle)
	if len(res.Queries) != 3 {
		t.Fatalf("results = %d", len(res.Queries))
	}
	for _, q := range res.Queries {
		if q.Elapsed <= 0 {
			t.Fatalf("query %s did not run", q.ID)
		}
	}
	// nil arrivals and nil strategy are both allowed.
	res2 := s.Run(insts, nil, nil)
	if res2.TotalElapsed() <= res.TotalElapsed() {
		t.Fatal("default run should be slower than oracle-prefetched run")
	}
}

func TestConfigDefaults(t *testing.T) {
	s := New(dsb.NewGenerator(dsb.Config{ScaleFactor: 5, Seed: 7}).DB(), Config{})
	cfg := s.Config()
	if cfg.Window != 1024 || cfg.PrefetchBufferFraction != 0.75 || cfg.Replay.BufferPages != 2048 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if len(s.Workloads()) != 0 {
		t.Fatal("fresh system has workloads")
	}
}

func TestInferenceDeadlineDegradesToDefault(t *testing.T) {
	s, w := testSystem(t)
	train, test := w.Split(0.1, 3)
	s.Train("t91", train)
	insts := test[:4]

	// PredictLatency over the deadline: every prefetching query degrades.
	late := *s
	late.cfg.InferenceDeadline = s.cfg.Replay.Cost.PredictLatency / 2
	res := late.Run(insts, nil, late.Prefetch)
	if got := res.InferenceDeadlineMisses; got != uint64(len(insts)) {
		t.Fatalf("deadline misses %d, want %d", got, len(insts))
	}
	dflt := s.Run(insts, nil, nil)
	if res.TotalElapsed() != dflt.TotalElapsed() {
		t.Fatal("deadline-degraded run is not timing-identical to the default path")
	}

	// No deadline, no faults: zero misses.
	if r := s.Run(insts, nil, s.Prefetch); r.InferenceDeadlineMisses != 0 {
		t.Fatalf("clean run recorded %d deadline misses", r.InferenceDeadlineMisses)
	}

	// A certain inference fault degrades every query too, and the baseline
	// (nil strategy) never draws the inference site.
	chaotic := s.WithFault(fault.New(fault.Plan{InferenceRate: 1}, 3))
	if r := chaotic.Run(insts, nil, chaotic.Prefetch); r.InferenceDeadlineMisses != uint64(len(insts)) {
		t.Fatalf("faulted run missed %d inferences, want %d", r.InferenceDeadlineMisses, len(insts))
	}
	if r := chaotic.Run(insts, nil, nil); r.InferenceDeadlineMisses != 0 {
		t.Fatal("default-path run drew inference faults")
	}
}
