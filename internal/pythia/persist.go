package pythia

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/predictor"
)

// persistedWorkload is the on-disk form of one trained workload: its name,
// the matching metadata (templates and relation set), and the predictor.
type persistedWorkload struct {
	Version   int
	Name      string
	Templates []string
	Relations []string
	Predictor []byte
}

const persistVersion = 1

// SaveWorkload writes the named trained workload to w, so a production
// deployment can train once and serve from the persisted models.
func (s *System) SaveWorkload(name string, w io.Writer) error {
	var tw *Trained
	for _, t := range s.trained {
		if t.Name == name {
			tw = t
		}
	}
	if tw == nil {
		return fmt.Errorf("pythia: no trained workload %q", name)
	}
	state := persistedWorkload{Version: persistVersion, Name: tw.Name}
	for t := range tw.templates {
		state.Templates = append(state.Templates, t)
	}
	for r := range tw.relations {
		state.Relations = append(state.Relations, r)
	}
	sort.Strings(state.Templates)
	sort.Strings(state.Relations)
	var buf bytes.Buffer
	if err := tw.Pred.Save(&buf); err != nil {
		return err
	}
	state.Predictor = buf.Bytes()
	return gob.NewEncoder(w).Encode(&state)
}

// persistedSystem is the on-disk form of a whole trained system: every
// workload bundle in registration order. It is the snapshot unit of the
// serve tier's zero-downtime model swap — one Save on the training side, one
// LoadSystem per standby replica on the serving side.
type persistedSystem struct {
	Version   int
	Workloads [][]byte
}

// Save writes every trained workload to w as one snapshot bundle. Loading
// the bundle with LoadSystem reconstructs the full serving state (matching
// metadata and model weights), so a deployment can train once, persist, and
// later hot-swap the serving models from the file without restarting.
func (s *System) Save(w io.Writer) error {
	state := persistedSystem{Version: persistVersion}
	for _, tw := range s.trained {
		var buf bytes.Buffer
		if err := s.SaveWorkload(tw.Name, &buf); err != nil {
			return err
		}
		state.Workloads = append(state.Workloads, buf.Bytes())
	}
	return gob.NewEncoder(w).Encode(&state)
}

// LoadSystem reads a bundle written by Save into a fresh system over db,
// configured by cfg (invalid configurations panic exactly like New; pass one
// that came from Config.Normalize or an existing System). Every workload in
// the bundle is registered for matching in its saved order, so predictions
// from the loaded system are identical to the system that saved it.
func LoadSystem(db *catalog.Database, cfg Config, r io.Reader) (*System, error) {
	var state persistedSystem
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		return nil, fmt.Errorf("pythia: decoding system snapshot: %w", err)
	}
	if state.Version != persistVersion {
		return nil, fmt.Errorf("pythia: unsupported persisted version %d", state.Version)
	}
	sys := New(db, cfg)
	for _, wb := range state.Workloads {
		if _, err := sys.LoadWorkload(bytes.NewReader(wb)); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// LoadWorkload reads a workload previously written by SaveWorkload and
// registers it for matching, exactly as if Train had run.
func (s *System) LoadWorkload(r io.Reader) (*Trained, error) {
	var state persistedWorkload
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		return nil, fmt.Errorf("pythia: decoding workload: %w", err)
	}
	if state.Version != persistVersion {
		return nil, fmt.Errorf("pythia: unsupported persisted version %d", state.Version)
	}
	pred, err := predictor.Load(bytes.NewReader(state.Predictor))
	if err != nil {
		return nil, err
	}
	tw := &Trained{
		Name:      state.Name,
		Pred:      pred,
		templates: map[string]bool{},
		relations: map[string]bool{},
	}
	for _, t := range state.Templates {
		tw.templates[t] = true
	}
	for _, rel := range state.Relations {
		tw.relations[rel] = true
	}
	s.trained = append(s.trained, tw)
	return tw, nil
}
