package pythia

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/predictor"
	"github.com/pythia-db/pythia/internal/quality"
)

// Snapshot bundles are framed so a load can tell a torn or bit-rotted file
// from a healthy one before handing bytes to gob. The frame is
//
//	magic "PYSNAP01" · uint64 payload length · payload · uint32 CRC-32 (IEEE)
//
// (integers big-endian). The length makes truncation detectable even when the
// cut falls on a gob message boundary, and the trailing checksum is written
// last, so a crash mid-write always leaves a detectably incomplete file.
var snapMagic = [8]byte{'P', 'Y', 'S', 'N', 'A', 'P', '0', '1'}

// ErrSnapshotCorrupt marks a snapshot that is truncated, checksummed wrong,
// or otherwise unreadable. Callers match it with errors.Is to distinguish
// "the file is damaged" (keep serving the old generation, alert an operator)
// from programming errors.
var ErrSnapshotCorrupt = errors.New("pythia: snapshot corrupt")

// ErrSnapshotVersion marks a structurally intact snapshot written by an
// incompatible persistence version.
var ErrSnapshotVersion = errors.New("pythia: snapshot version unsupported")

// sealEnvelope frames payload and writes it to w.
func sealEnvelope(w io.Writer, payload []byte) error {
	var hdr [16]byte
	copy(hdr[:8], snapMagic[:])
	binary.BigEndian.PutUint64(hdr[8:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var foot [4]byte
	binary.BigEndian.PutUint32(foot[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(foot[:])
	return err
}

// openEnvelope reads a frame written by sealEnvelope and returns the verified
// payload. Every failure mode — short read, wrong magic, truncated payload,
// trailing garbage, checksum mismatch — wraps ErrSnapshotCorrupt.
func openEnvelope(r io.Reader) ([]byte, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrSnapshotCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], snapMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotCorrupt, hdr[:8])
	}
	want := binary.BigEndian.Uint64(hdr[8:])
	// Read what is actually there rather than trusting the declared length
	// with an allocation, so a corrupted length field cannot balloon memory.
	rest, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrSnapshotCorrupt, err)
	}
	if uint64(len(rest)) != want+4 {
		return nil, fmt.Errorf("%w: payload %d bytes, header declares %d", ErrSnapshotCorrupt, len(rest), want+4)
	}
	payload := rest[:want]
	sum := binary.BigEndian.Uint32(rest[want:])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum %08x, footer says %08x", ErrSnapshotCorrupt, got, sum)
	}
	return payload, nil
}

// persistedWorkload is the on-disk form of one trained workload: its name,
// the matching metadata (templates and relation set), the predictor, and the
// training-time drift baseline. Baseline rides as an added gob field —
// version 2 snapshots written before it existed decode with a nil Baseline
// (drift detection off), so the persistence version is unchanged.
type persistedWorkload struct {
	Version   int
	Name      string
	Templates []string
	Relations []string
	Predictor []byte
	Baseline  *quality.Profile
}

const persistVersion = 2

// SaveWorkload writes the named trained workload to w, so a production
// deployment can train once and serve from the persisted models.
func (s *System) SaveWorkload(name string, w io.Writer) error {
	var tw *Trained
	for _, t := range s.trained {
		if t.Name == name {
			tw = t
		}
	}
	if tw == nil {
		return fmt.Errorf("pythia: no trained workload %q", name)
	}
	state := persistedWorkload{Version: persistVersion, Name: tw.Name, Baseline: tw.Baseline}
	for t := range tw.templates {
		state.Templates = append(state.Templates, t)
	}
	for r := range tw.relations {
		state.Relations = append(state.Relations, r)
	}
	sort.Strings(state.Templates)
	sort.Strings(state.Relations)
	var buf bytes.Buffer
	if err := tw.Pred.Save(&buf); err != nil {
		return err
	}
	state.Predictor = buf.Bytes()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&state); err != nil {
		return err
	}
	return sealEnvelope(w, payload.Bytes())
}

// persistedSystem is the on-disk form of a whole trained system: every
// workload bundle in registration order. It is the snapshot unit of the
// serve tier's zero-downtime model swap — one Save on the training side, one
// LoadSystem per standby replica on the serving side.
type persistedSystem struct {
	Version   int
	Workloads [][]byte
}

// Save writes every trained workload to w as one snapshot bundle. Loading
// the bundle with LoadSystem reconstructs the full serving state (matching
// metadata and model weights), so a deployment can train once, persist, and
// later hot-swap the serving models from the file without restarting.
//
// To persist to disk, prefer SaveFile: it makes the write atomic, so a crash
// mid-save can never tear an existing snapshot.
func (s *System) Save(w io.Writer) error {
	state := persistedSystem{Version: persistVersion}
	for _, tw := range s.trained {
		var buf bytes.Buffer
		if err := s.SaveWorkload(tw.Name, &buf); err != nil {
			return err
		}
		state.Workloads = append(state.Workloads, buf.Bytes())
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&state); err != nil {
		return err
	}
	return sealEnvelope(w, payload.Bytes())
}

// SaveFile persists the snapshot bundle to path atomically: the bytes go to
// a temp file in the same directory, are fsynced, and only then renamed over
// path. Readers therefore always see either the complete old snapshot or the
// complete new one — never a torn intermediate — and a crash at any point
// leaves at worst a stray temp file, which the next SaveFile ignores.
func (s *System) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := s.Save(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best-effort directory sync so the rename itself is durable; snapshot
	// content durability is already guaranteed by the file fsync above.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadSystem reads a bundle written by Save into a fresh system over db,
// configured by cfg (invalid configurations panic exactly like New; pass one
// that came from Config.Normalize or an existing System). Every workload in
// the bundle is registered for matching in its saved order, so predictions
// from the loaded system are identical to the system that saved it.
//
// A truncated, checksum-failing, or otherwise damaged bundle returns an error
// wrapping ErrSnapshotCorrupt; an intact bundle from an incompatible
// persistence version wraps ErrSnapshotVersion.
func LoadSystem(db *catalog.Database, cfg Config, r io.Reader) (*System, error) {
	payload, err := openEnvelope(r)
	if err != nil {
		return nil, err
	}
	var state persistedSystem
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&state); err != nil {
		return nil, fmt.Errorf("%w: decoding system snapshot: %v", ErrSnapshotCorrupt, err)
	}
	if state.Version != persistVersion {
		return nil, fmt.Errorf("%w: persisted version %d, this build reads %d", ErrSnapshotVersion, state.Version, persistVersion)
	}
	sys := New(db, cfg)
	for _, wb := range state.Workloads {
		if _, err := sys.LoadWorkload(bytes.NewReader(wb)); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// LoadWorkload reads a workload previously written by SaveWorkload and
// registers it for matching, exactly as if Train had run. Damaged input
// wraps ErrSnapshotCorrupt; a version mismatch wraps ErrSnapshotVersion.
func (s *System) LoadWorkload(r io.Reader) (*Trained, error) {
	payload, err := openEnvelope(r)
	if err != nil {
		return nil, err
	}
	var state persistedWorkload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&state); err != nil {
		return nil, fmt.Errorf("%w: decoding workload: %v", ErrSnapshotCorrupt, err)
	}
	if state.Version != persistVersion {
		return nil, fmt.Errorf("%w: persisted version %d, this build reads %d", ErrSnapshotVersion, state.Version, persistVersion)
	}
	pred, err := predictor.Load(bytes.NewReader(state.Predictor))
	if err != nil {
		return nil, err
	}
	tw := &Trained{
		Name:      state.Name,
		Pred:      pred,
		Baseline:  state.Baseline,
		templates: map[string]bool{},
		relations: map[string]bool{},
	}
	for _, t := range state.Templates {
		tw.templates[t] = true
	}
	for _, rel := range state.Relations {
		tw.relations[rel] = true
	}
	s.trained = append(s.trained, tw)
	return tw, nil
}
