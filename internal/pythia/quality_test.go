package pythia

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/pythia-db/pythia/internal/dsb"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/quality"
	"github.com/pythia-db/pythia/internal/span"
)

// TestScorerReconcilesWithObsCounters pins the acceptance identity: on a
// golden replay run, the quality scorer's event totals equal the obs counters
// 1:1 — same stream, two views.
func TestScorerReconcilesWithObsCounters(t *testing.T) {
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 8, Seed: 7})
	w := g.Workload("t91", 40, 1)
	train, test := w.Split(0.3, 3)

	var counters obs.Counters
	scorer := quality.NewScorer(quality.Options{})
	cfg := testConfig()
	cfg.Recorder = &counters
	cfg.Quality = scorer
	s := New(g.DB(), cfg)
	s.Train("t91", train)

	res := s.Run(test, nil, s.Prefetch)
	if len(res.Queries) != len(test) {
		t.Fatalf("replayed %d queries, want %d", len(res.Queries), len(test))
	}

	r := scorer.Report()
	if len(r.Queries) != len(test) {
		t.Fatalf("scored %d queries, want %d", len(r.Queries), len(test))
	}
	ev := r.Total.Events
	identities := []struct {
		name   string
		scorer uint64
		kind   obs.Kind
	}{
		{"prefetched", ev.Prefetched, obs.PrefetchedIn},
		{"useful", ev.Useful, obs.PrefetchHit},
		{"wasted", ev.Wasted, obs.PrefetchWasted},
		{"fallback sync reads", ev.Fallbacks, obs.FallbackSyncRead},
		{"buffer misses", ev.BufferMisses, obs.BufferMiss},
	}
	for _, id := range identities {
		if got := counters.Get(id.kind); id.scorer != got {
			t.Errorf("%s: scorer total %d, obs counter %d", id.name, id.scorer, got)
		}
	}
	if ev.Prefetched == 0 || ev.Useful == 0 {
		t.Fatalf("golden run produced no prefetch traffic to reconcile: %+v", ev)
	}
	if counters.Get(obs.QualityScored) != uint64(len(test)) {
		t.Fatalf("QualityScored = %d, want one per query (%d)",
			counters.Get(obs.QualityScored), len(test))
	}
	// The set view must be live too: a trained predictor on its own template
	// family prefetches something useful.
	if r.Total.Precision <= 0 || r.Total.Recall <= 0 {
		t.Fatalf("degenerate set scores: %+v", r.Total)
	}
	// And the two views agree on what "wasted" means at the aggregate level:
	// wasted + useful + fallbacks cannot exceed what was prefetched in.
	if ev.Useful+ev.Wasted > ev.Prefetched {
		t.Fatalf("useful %d + wasted %d exceed prefetched %d", ev.Useful, ev.Wasted, ev.Prefetched)
	}
}

// TestDriftAlarmDeterministic pins the acceptance criterion: replaying a
// held-out template mix against a baseline trained on a different mix fires
// the drift alarm; replaying the training mix does not.
func TestDriftAlarmDeterministic(t *testing.T) {
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 8, Seed: 7})
	trainW := g.Workload("t18", 40, 1)
	heldOut := g.Workload("t91", 40, 2)

	newSys := func() (*System, *quality.Scorer, *obs.Counters) {
		var counters obs.Counters
		scorer := quality.NewScorer(quality.Options{EvalEvery: 8})
		cfg := testConfig()
		cfg.Recorder = &counters
		cfg.Quality = scorer
		s := New(g.DB(), cfg)
		s.Train("t18", trainW.Instances[:30])
		scorer.SetBaseline(s.Baseline())
		return s, scorer, &counters
	}

	// Training mix: no alarm, ever.
	s, scorer, counters := newSys()
	s.Run(trainW.Instances[30:], nil, s.Prefetch)
	if st := scorer.Report().Drift; st.State != "ok" || st.Alarms != 0 || st.Warnings != 0 {
		t.Fatalf("training mix drifted: %+v", st)
	}
	if counters.Get(obs.DriftAlarm) != 0 {
		t.Fatal("DriftAlarm recorded on the training mix")
	}

	// Held-out mix: the alarm fires, and the obs event stream says so.
	s2, scorer2, counters2 := newSys()
	s2.Run(heldOut.Instances, nil, s2.Prefetch)
	st := scorer2.Report().Drift
	if st.State != "alarm" {
		t.Fatalf("held-out mix state = %q (score %.3f), want alarm", st.State, st.Score)
	}
	if counters2.Get(obs.DriftAlarm) == 0 {
		t.Fatal("no DriftAlarm event recorded on the held-out mix")
	}
	if scorer2.Report().BaselineHash != scorer.Report().BaselineHash {
		t.Fatal("both runs must report the same baseline identity")
	}

	// Determinism: the same held-out replay scores identically.
	s3, scorer3, _ := newSys()
	s3.Run(heldOut.Instances, nil, s3.Prefetch)
	a, b := scorer2.Report(), scorer3.Report()
	if a.Drift != b.Drift || !reflect.DeepEqual(a.Total, b.Total) {
		t.Fatalf("held-out replay not deterministic:\n%+v\nvs\n%+v", a.Drift, b.Drift)
	}
}

// TestQualityObservationDoesNotPerturbTimeline pins the acceptance
// criterion: a traced run's timeline is bitwise identical with quality
// observation enabled.
func TestQualityObservationDoesNotPerturbTimeline(t *testing.T) {
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 8, Seed: 7})
	w := g.Workload("t91", 24, 1)
	train, test := w.Split(0.3, 3)

	trace := func(withQuality bool) []span.Span {
		cfg := testConfig()
		cfg.Tracer = span.New()
		if withQuality {
			cfg.Quality = quality.NewScorer(quality.Options{})
		}
		s := New(g.DB(), cfg)
		s.Train("t91", train)
		if withQuality {
			// Arm drift too: the training mix holds no transitions, so even
			// an armed monitor must leave the timeline untouched.
			cfg.Quality.SetBaseline(s.Baseline())
		}
		s.Run(test, nil, s.Prefetch)
		return cfg.Tracer.Spans()
	}

	plain := trace(false)
	observed := trace(true)
	if len(plain) == 0 {
		t.Fatal("traced run produced no spans")
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("timeline changed under quality observation: %d vs %d spans", len(plain), len(observed))
	}
}

// TestBaselinePersistsInSnapshot round-trips the drift baseline through the
// PYSNAP01 envelope: identity survives, and a pre-baseline snapshot (nil
// Baseline) loads with drift off.
func TestBaselinePersistsInSnapshot(t *testing.T) {
	g := dsb.NewGenerator(dsb.Config{ScaleFactor: 8, Seed: 7})
	w := g.Workload("t91", 20, 1)
	train, _ := w.Split(0.5, 3)

	s := New(g.DB(), testConfig())
	s.Train("t91", train)
	id := s.BaselineID()
	if id == nil || id.Plans != uint64(len(train)) || id.Workloads != 1 {
		t.Fatalf("baseline id = %+v", id)
	}
	if id.TrainTime <= 0 {
		t.Fatalf("baseline id TrainTime = %v, want > 0", id.TrainTime)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSystem(g.DB(), testConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	lid := loaded.BaselineID()
	if lid == nil || lid.Hash != id.Hash || lid.Plans != id.Plans {
		t.Fatalf("loaded baseline id %+v, want %+v", lid, id)
	}

	// A snapshot whose workload predates baselines: simulate by clearing.
	loaded.trained[0].Baseline = nil
	if loaded.Baseline() != nil || loaded.BaselineID() != nil {
		t.Fatal("nil workload baselines must yield a nil system baseline")
	}
}
