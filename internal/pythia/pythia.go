// Package pythia is the top-level system: the analog of the paper's
// Postgres integration (§4). It owns trained per-workload predictors,
// decides for each incoming query whether Pythia engages (workload matching,
// Algorithm 3 lines 3–4) or execution falls back to the default path,
// applies limited prefetching when predictions exceed what the buffer pool
// can hold, and replays queries through the buffer/OS-cache/disk timing
// model with or without the asynchronous prefetcher.
package pythia

import (
	"fmt"
	"strconv"
	"time"

	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/fault"
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/predictor"
	"github.com/pythia-db/pythia/internal/quality"
	"github.com/pythia-db/pythia/internal/replay"
	"github.com/pythia-db/pythia/internal/serialize"
	"github.com/pythia-db/pythia/internal/sim"
	"github.com/pythia-db/pythia/internal/span"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/workload"
)

// Config assembles the system.
type Config struct {
	// Replay is the timing model (buffer size, policy, cost constants).
	Replay replay.Config
	// Predictor configures model training.
	Predictor predictor.Options
	// Window is the readahead window R (pinned prefetched pages); the
	// paper's default is 1024.
	Window int
	// PrefetchBufferFraction bounds limited prefetching: at most this
	// fraction of the buffer pool is filled by prefetch for one query
	// ("we perform limited prefetching to stay within buffer memory
	// bounds", §5.1). Default 0.75.
	PrefetchBufferFraction float64
	// Recorder, when non-nil, receives system-level events (workload
	// matched/fallback, limited-prefetching truncation) and is threaded
	// into every replay this system runs, so live per-level cache counters
	// flow to it. Nil disables observability at zero cost.
	Recorder obs.Recorder
	// Tracer, when non-nil, records the virtual-time span timeline of every
	// replay this system runs (see internal/span), plus system-level
	// inference-degrade marks. Like Replay.Fault, use a fresh tracer per
	// run: spans accumulate across Run calls.
	Tracer *span.Tracer
	// InferenceDeadline is the virtual-time budget for model inference.
	// When the replay cost model's PredictLatency exceeds it, every query
	// degrades to the default (no-prefetch) path — prefetching is advisory,
	// so a late prediction is a skipped prediction, never a stall. Zero
	// means no deadline. The Replay.Fault injector's Inference site models
	// sporadic (rather than systematic) deadline misses.
	InferenceDeadline sim.Duration
	// Quality, when non-nil, scores every replayed query against ground
	// truth and streams each plan's tokens through drift detection. Run
	// registers queries with it, chains it into the replay's recorder fan-out
	// (the scorer is a pure observer: virtual-time timelines are bitwise
	// identical with or without it), and arms its drift baseline from the
	// system's trained workloads.
	Quality *quality.Scorer
}

// Normalize validates the configuration and fills unset (zero) fields with
// defaults, including the nested replay config. Out-of-range values —
// a negative window, a prefetch fraction outside (0, 1] — are errors, not
// silently patched defaults.
func (c Config) Normalize() (Config, error) {
	if c.Window < 0 {
		return c, fmt.Errorf("pythia: negative Window %d", c.Window)
	}
	if c.InferenceDeadline < 0 {
		return c, fmt.Errorf("pythia: negative InferenceDeadline %v", c.InferenceDeadline)
	}
	if c.Window == 0 {
		c.Window = 1024
	}
	if c.PrefetchBufferFraction < 0 || c.PrefetchBufferFraction > 1 {
		return c, fmt.Errorf("pythia: PrefetchBufferFraction %g outside (0, 1]", c.PrefetchBufferFraction)
	}
	if c.PrefetchBufferFraction == 0 {
		c.PrefetchBufferFraction = 0.75
	}
	if c.Replay.BufferPages == 0 {
		c.Replay.BufferPages = 2048
	}
	var err error
	if c.Replay, err = c.Replay.Normalize(); err != nil {
		return c, err
	}
	return c, nil
}

// DefaultConfig returns the experiment harness defaults. The predictor
// trains in parallel over label spaces restricted to observed pages —
// prediction-equivalent to the paper's full page-per-output-node decoder
// (never-observed pages converge to "never predict" anyway) but much
// faster; set Predictor.ObservedOnly = false for the paper's exact layout.
func DefaultConfig() Config {
	return Config{
		Replay:                 replay.Config{BufferPages: 2048},
		Predictor:              predictor.Options{ObservedOnly: true, Parallel: true},
		Window:                 1024,
		PrefetchBufferFraction: 0.75,
	}
}

// driftSerializeCfg is the canonical serialization for drift profiles:
// coarse, single-resolution value buckets. Drift detection watches for
// template-mix and domain shifts, not per-instance parameter noise — the
// model's fine-resolution token ladder would make sparsely-sampled wide
// domains read as divergence. Baseline and live streams must use the same
// config; changing it invalidates persisted baselines (the profile hash
// changes, so /stats shows a new identity).
var driftSerializeCfg = serialize.Config{ValueBuckets: 8, SingleResolution: true}

// DriftTokens serializes a plan into the model-independent token stream
// drift profiles are built from — shared by training-time baselines, replay
// scoring, and the serve tier's live monitors.
func DriftTokens(root *plan.Node) []serialize.Token {
	return serialize.Serialize(root, driftSerializeCfg)
}

// Trained is one workload Pythia has models for.
type Trained struct {
	Name string
	Pred *predictor.Predictor
	// Baseline is the workload's training-time plan-distribution profile:
	// the frozen reference drift detection compares the live stream against.
	// Persisted inside the snapshot envelope; nil on snapshots taken before
	// baselines existed (drift detection then stays off).
	Baseline  *quality.Profile
	templates map[string]bool
	relations map[string]bool
}

// System is a database plus Pythia's trained workloads.
type System struct {
	DB      *catalog.Database
	cfg     Config
	trained []*Trained
}

// New assembles a system over db. It panics on an invalid Config; call
// Config.Normalize first to handle validation errors gracefully (the cmds
// do).
func New(db *catalog.Database, cfg Config) *System {
	cfg, err := cfg.Normalize()
	if err != nil {
		panic(err.Error())
	}
	return &System{DB: db, cfg: cfg}
}

// record emits one system-level event to the configured recorder.
//
//pythia:noalloc
func (s *System) record(k obs.Kind) {
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.Record(obs.Event{Kind: k, Query: obs.NoQuery})
	}
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Train fits a predictor for the named workload from training instances and
// registers it for matching.
func (s *System) Train(name string, train []*workload.Instance) *Trained {
	samples := make([]predictor.TrainSample, len(train))
	tw := &Trained{
		Name:      name,
		templates: map[string]bool{},
		relations: map[string]bool{},
	}
	tw.Baseline = &quality.Profile{}
	for i, inst := range train {
		samples[i] = predictor.TrainSample{Plan: inst.Plan, Trace: inst.Trace}
		tw.templates[inst.Query.Template] = true
		tw.relations[inst.Query.Fact] = true
		for _, d := range inst.Query.Dims {
			tw.relations[d.Dim] = true
		}
		// The drift baseline uses the model-independent serialization (not
		// the predictor's vocabulary ids) so unmatched held-out queries still
		// land in the same feature space at serving time.
		tw.Baseline.ObserveTokens(DriftTokens(inst.Plan))
	}
	tw.Pred = predictor.Train(s.DB.Registry, samples, s.cfg.Predictor)
	s.trained = append(s.trained, tw)
	return tw
}

// Workloads returns the trained workloads.
func (s *System) Workloads() []*Trained { return s.trained }

// Baseline merges the trained workloads' training-time profiles into the
// system-wide drift baseline. Nil when no workload carries one (untrained
// system, or a snapshot predating baselines) — drift detection stays off.
func (s *System) Baseline() *quality.Profile {
	var merged *quality.Profile
	for _, tw := range s.trained {
		if tw.Baseline == nil {
			continue
		}
		if merged == nil {
			merged = &quality.Profile{}
		}
		merged.Merge(tw.Baseline)
	}
	return merged
}

// BaselineID identifies the model generation a drift report was measured
// against: the baseline profile's content hash plus training provenance.
// /stats exposes it so drift alarms correlate to a specific generation
// across zero-downtime model swaps.
type BaselineID struct {
	// Hash is the baseline Profile's content hash (16 hex chars).
	Hash string `json:"hash"`
	// Plans is the number of training plans folded into the baseline.
	Plans uint64 `json:"plans"`
	// Workloads is the number of trained workloads merged in.
	Workloads int `json:"workloads"`
	// TrainTime is the summed wall-clock fitting time across workloads
	// (nanoseconds in JSON).
	TrainTime time.Duration `json:"train_time_ns"`
}

// BaselineID returns the system's baseline identity, nil when no baseline
// exists.
func (s *System) BaselineID() *BaselineID {
	b := s.Baseline()
	if b == nil {
		return nil
	}
	id := &BaselineID{Hash: b.HashString(), Plans: b.Plans, Workloads: len(s.trained)}
	for _, tw := range s.trained {
		if tw.Pred != nil {
			id.TrainTime += tw.Pred.TrainTime
		}
	}
	return id
}

// WithReplay returns a copy of the system sharing its trained predictors
// but replaying under a different timing configuration — the buffer-size,
// replacement-policy, and cost sweeps (Figures 12e–f) retrain nothing.
func (s *System) WithReplay(rc replay.Config) *System {
	clone := *s
	if rc.BufferPages == 0 {
		rc.BufferPages = s.cfg.Replay.BufferPages
	}
	normalized, err := rc.Normalize()
	if err != nil {
		panic(err.Error())
	}
	clone.cfg.Replay = normalized
	return &clone
}

// WithWindow returns a copy of the system with a different readahead window
// (the Figure 12g sweep), sharing trained predictors.
func (s *System) WithWindow(w int) *System {
	clone := *s
	if w > 0 {
		clone.cfg.Window = w
	}
	return &clone
}

// WithFault returns a copy of the system whose replays run under the given
// fault injector (chaos sweeps retrain nothing). Pass a fresh injector per
// run for bitwise-reproducible timelines.
func (s *System) WithFault(inj *fault.Injector) *System {
	clone := *s
	clone.cfg.Replay.Fault = inj
	return &clone
}

// Match decides which trained workload (if any) a query belongs to: an
// exact template match first, then a relation-set Jaccard ≥ 0.5 fallback for
// untagged queries. Nil means Pythia does not engage and the query runs on
// the default path (Algorithm 3, line 14).
func (s *System) Match(q plan.Query) *Trained {
	tw := s.match(q)
	if tw != nil {
		s.record(obs.WorkloadMatched)
	} else {
		s.record(obs.WorkloadFallback)
	}
	return tw
}

// Lookup is Match without the workload-matching event: for callers that
// already recorded the routing decision once and only need the *Trained
// handle again. The serve tier's replica pool matches on its routing view to
// pick a replica, then the routed replica resolves its own (independent)
// Trained with Lookup so one request never counts as two matches.
func (s *System) Lookup(q plan.Query) *Trained { return s.match(q) }

func (s *System) match(q plan.Query) *Trained {
	for _, tw := range s.trained {
		if q.Template != "" && tw.templates[q.Template] {
			return tw
		}
	}
	var best *Trained
	bestSim := 0.5
	qRels := map[string]bool{q.Fact: true}
	for _, d := range q.Dims {
		qRels[d.Dim] = true
	}
	for _, tw := range s.trained {
		inter, union := 0, len(tw.relations)
		for r := range qRels {
			if tw.relations[r] {
				inter++
			} else {
				union++
			}
		}
		if union == 0 {
			continue
		}
		if sim := float64(inter) / float64(union); sim >= bestSim {
			bestSim = sim
			best = tw
		}
	}
	return best
}

// Prefetch runs Algorithm 3 for one query: match its workload, predict the
// page set from the serialized plan, and bound it for the buffer. A nil
// result means fallback (no prefetching).
func (s *System) Prefetch(inst *workload.Instance) []storage.PageID {
	tw := s.Match(inst.Query)
	if tw == nil {
		return nil
	}
	return s.LimitPrefetch(tw.Pred.PredictParallel(inst.Plan))
}

// LimitPrefetch truncates a predicted page set to the buffer-bounded budget,
// keeping file-storage order.
func (s *System) LimitPrefetch(pages []storage.PageID) []storage.PageID {
	budget := int(float64(s.cfg.Replay.BufferPages) * s.cfg.PrefetchBufferFraction)
	if len(pages) > budget {
		pages = pages[:budget]
		s.record(obs.PrefetchLimited)
	}
	return pages
}

// PrefetchFunc maps an instance to its prefetch set; baselines and Pythia
// itself both fit this shape.
type PrefetchFunc func(*workload.Instance) []storage.PageID

// Run replays instances with per-instance arrival times and the given
// prefetch strategy (nil strategy = default execution for all). Prefetch
// sets from the strategy are buffer-bounded exactly like Pythia's own.
func (s *System) Run(insts []*workload.Instance, arrivals []sim.Duration, strategy PrefetchFunc) *replay.RunResult {
	q := s.cfg.Quality
	if q != nil {
		q.Bind(s.cfg.Recorder, s.cfg.Tracer)
		q.StartRun()
	}
	specs := make([]replay.QuerySpec, len(insts))
	var deadlineMisses uint64
	for i, inst := range insts {
		var arr sim.Duration
		if arrivals != nil {
			arr = arrivals[i]
		}
		var pf []storage.PageID
		if strategy != nil {
			if s.inferenceMissed(sim.Time(arr)) {
				// A late (or faulted) inference is a skipped one: the query
				// runs on the default path instead of waiting.
				deadlineMisses++
				s.record(obs.InferenceDeadlineMiss)
				s.cfg.Tracer.SetQuery(int32(i))
				s.cfg.Tracer.Instant(span.DegradeMark, storage.PageID{}, sim.Time(arr))
				s.cfg.Tracer.SetQuery(span.NoQuery)
			} else {
				pf = s.LimitPrefetch(strategy(inst))
			}
		}
		specs[i] = replay.QuerySpec{
			ID:       specID(inst, i),
			Arrival:  arr,
			Requests: inst.Requests,
			Prefetch: pf,
			Window:   s.cfg.Window,
		}
		if q != nil {
			wl := ""
			if tw := s.Lookup(inst.Query); tw != nil {
				wl = tw.Name
			}
			q.Register(specs[i].ID, wl, pf, inst.Pages)
			q.ObservePlan(DriftTokens(inst.Plan))
		}
	}
	cfg := s.cfg.Replay
	cfg.DefaultWindow = s.cfg.Window
	if cfg.Recorder == nil {
		// The system-level recorder observes every replay too, so live
		// per-level cache counters flow to one place.
		cfg.Recorder = s.cfg.Recorder
	}
	if cfg.Tracer == nil {
		cfg.Tracer = s.cfg.Tracer
	}
	if q != nil {
		// The scorer rides the recorder fan-out as a pure observer: replay's
		// event stream drives its per-query counters without touching the
		// virtual-time engine.
		if cfg.Recorder != nil {
			cfg.Recorder = obs.Multi{cfg.Recorder, q}
		} else {
			cfg.Recorder = q
		}
	}
	res := replay.Run(s.DB.Registry, cfg, specs)
	res.InferenceDeadlineMisses = deadlineMisses
	return res
}

// inferenceMissed decides whether one query's model inference blew its
// budget: systematically (the cost model's PredictLatency exceeds the
// configured deadline) or sporadically (the fault injector's Inference site
// fires).
func (s *System) inferenceMissed(at sim.Time) bool {
	if s.cfg.InferenceDeadline > 0 && s.cfg.Replay.Cost.PredictLatency > s.cfg.InferenceDeadline {
		return true
	}
	return s.cfg.Replay.Fault.Fire(fault.Inference, at)
}

func specID(inst *workload.Instance, i int) string {
	return inst.Query.Template + "#" + strconv.Itoa(inst.Query.Instance) + "/" + strconv.Itoa(i)
}

// SpeedupColdCache measures one instance's cold-cache speedup: the ratio of
// its default-path elapsed time to its elapsed time under the strategy
// ("Postgres is restarted between every different query execution along
// with cleaning OS page cache", §5.1 — each Run starts cold).
func (s *System) SpeedupColdCache(inst *workload.Instance, strategy PrefetchFunc) float64 {
	dflt := s.Run([]*workload.Instance{inst}, nil, nil)
	variant := s.Run([]*workload.Instance{inst}, nil, strategy)
	return float64(dflt.TotalElapsed()) / float64(variant.TotalElapsed())
}
