package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errdiscard forbids discarding the error results of the repo's validated
// construction APIs: plan.Planner.Plan, workload.Build, and any
// Normalize() (T, error). PR 2 converted these from panics to errors
// precisely so callers handle failure; assigning the error to _ (or
// dropping the whole result) silently reintroduces the panic-era blind
// spot. Valid-by-construction callers have MustPlan/MustBuild instead.
// A declaration that genuinely must ignore the error carries
// //pythia:errcheck-ok.
var Errdiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "Plan/Build/Normalize errors must not be discarded",
	Run:  runErrdiscard,
}

func runErrdiscard(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, label := checkedCallee(info, call)
				if fn == nil {
					return true
				}
				sig := fn.Type().(*types.Signature)
				for i := 0; i < sig.Results().Len() && i < len(s.Lhs); i++ {
					if !isErrorType(sig.Results().At(i).Type()) {
						continue
					}
					if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						if !pass.Suppressed(s.Pos(), DirErrcheckOK) {
							pass.Reportf(s.Pos(), "error result of %s assigned to _ (handle it, use the Must variant, or annotate the declaration //pythia:errcheck-ok)", label)
						}
					}
				}
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, label := checkedCallee(info, call); fn != nil && !pass.Suppressed(s.Pos(), DirErrcheckOK) {
					pass.Reportf(s.Pos(), "result and error of %s discarded (handle it, use the Must variant, or annotate the declaration //pythia:errcheck-ok)", label)
				}
			}
			return true
		})
	}
}

// checkedCallee resolves call's callee and reports it (with a short label
// for diagnostics) when it is one of the checked APIs.
func checkedCallee(info *types.Info, call *ast.CallExpr) (*types.Func, string) {
	var fn *types.Func
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = info.Uses[f.Sel].(*types.Func)
		}
	}
	if fn == nil || fn.Pkg() == nil {
		return nil, ""
	}
	sig := fn.Type().(*types.Signature)
	switch {
	case fn.Name() == "Plan" && receiverNamed(sig, "Planner") && strings.HasSuffix(fn.Pkg().Path(), "internal/plan"):
		return fn, "plan.Planner.Plan"
	case fn.Name() == "Build" && sig.Recv() == nil && strings.HasSuffix(fn.Pkg().Path(), "internal/workload"):
		return fn, "workload.Build"
	case fn.Name() == "Normalize" && sig.Recv() != nil && lastResultIsError(sig):
		return fn, "Normalize"
	}
	return nil, ""
}

// receiverNamed reports whether sig is a method on (possibly a pointer to)
// a named type with the given name.
func receiverNamed(sig *types.Signature, name string) bool {
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// lastResultIsError reports whether sig's final result is error.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	return res.Len() > 0 && isErrorType(res.At(res.Len()-1).Type())
}

// isErrorType reports whether t is the built-in error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
