package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder enforces one global mutex-acquisition order per package. The
// serve tier holds locks across layers — Pool.Swap holds swapMu while
// warming replicas whose predict path takes health, breaker, and predcache
// mutexes — and the only thing keeping that deadlock-free is that no path
// ever acquires those locks in the reverse order. The analyzer makes that
// prose invariant (DESIGN.md "Replica pool & model swap") mechanical:
//
//   - every sync.Mutex/sync.RWMutex acquisition is classified by its lock
//     class — the (owning named type, field) pair, or the variable for
//     non-field mutexes — so all instances of health.mu are one class;
//   - acquiring B while holding A records the edge A → B, both for direct
//     Lock calls and through same-package calls (a call made while holding
//     A to a function that may acquire B, transitively);
//   - methods of wrapper types that lock internally for the duration of a
//     call (span.Sync) count as instantaneous acquisitions;
//   - a cycle among the recorded edges is reported at every acquisition
//     site on the cycle, and Lock on a class already held by the same
//     expression is reported as re-entrant (self-deadlock: Go mutexes are
//     not recursive).
//
// Goroutine bodies (`go func` / `go f()`) start with an empty held set:
// locks taken by a spawned goroutine are not ordered against the spawner's.
// Deliberate exceptions carry //pythia:lockorder-ok <reason> on the
// enclosing declaration; the escape drops that site's edges only.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisitions must follow one global order; no re-entrant Lock",
	Run:  runLockorder,
}

// lockWrappers maps module-relative type names to the display name of the
// mutex their methods acquire for the duration of each call. span.Sync is
// the repo's only lock wrapper: every exported method locks Sync.mu around
// the wrapped tracer.
var lockWrappers = map[string]string{
	"internal/span.Sync": "span.Sync.mu",
}

// lockClass identifies one mutex up to instance: all values of a given
// struct field share a class, package-level and local mutex variables get
// their own.
type lockClass struct {
	key     string // unique identity
	display string // short form for messages
}

// lockEdge is one "to acquired while from was held" observation.
type lockEdge struct {
	from, to string // class keys
	pos      token.Pos
	detail   string // rendered message fragment for the site
}

// funcLocks is the per-function lock behavior used by the interprocedural
// pass: the classes a function may acquire (directly, then transitively
// after the fixpoint) and its same-package callees.
type funcLocks struct {
	decl     *ast.FuncDecl
	acquires map[string]lockClass
	callees  map[*types.Func]bool
}

func runLockorder(pass *Pass) {
	lo := &lockorderPass{
		pass:  pass,
		info:  pass.Pkg.Info,
		funcs: make(map[*types.Func]*funcLocks),
	}
	// Index every function declaration and summarize its direct acquisitions.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := lo.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			lo.funcs[obj] = lo.summarize(fd)
		}
	}
	lo.fixpoint()
	// Walk every function (and every function literal, as its own empty-held
	// context) recording edges and re-entrancy.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lo.walkBody(fd.Body)
		}
	}
	lo.reportCycles()
}

type lockorderPass struct {
	pass    *Pass
	info    *types.Info
	funcs   map[*types.Func]*funcLocks
	edges   []lockEdge
	classes map[string]lockClass
}

// summarize collects fn's directly acquired lock classes and same-package
// callees. `go` statements are excluded: a spawned goroutine's acquisitions
// are not ordered against the caller's held set. Function literals are
// included (deferred and immediately-invoked closures run on the caller's
// goroutine) except when they are the go statement's callee.
func (lo *lockorderPass) summarize(fn *ast.FuncDecl) *funcLocks {
	fl := &funcLocks{
		decl:     fn,
		acquires: make(map[string]lockClass),
		callees:  make(map[*types.Func]bool),
	}
	skip := goSubtrees(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cls, method, ok := lo.mutexOp(call); ok {
			if method == "Lock" || method == "RLock" {
				fl.acquires[cls.key] = cls
			}
			return true
		}
		if cls, ok := lo.wrapperCall(call); ok {
			fl.acquires[cls.key] = cls
			return true
		}
		if callee := lo.samePackageCallee(call); callee != nil {
			fl.callees[callee] = true
		}
		return true
	})
	return fl
}

// fixpoint closes every function's acquire set over its same-package call
// graph: after it, funcs[f].acquires holds every class f may take,
// transitively.
func (lo *lockorderPass) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, fl := range lo.funcs {
			for callee := range fl.callees {
				cfl, ok := lo.funcs[callee]
				if !ok {
					continue
				}
				for key, cls := range cfl.acquires {
					if _, ok := fl.acquires[key]; !ok {
						fl.acquires[key] = cls
						changed = true
					}
				}
			}
		}
	}
}

// heldLock is one currently held acquisition.
type heldLock struct {
	cls  lockClass
	expr string // rendered receiver, for re-entrancy messages
	rd   bool   // acquired via RLock
}

// walkBody tracks the held-lock set through body in source order and
// records ordering edges. Nested function literals are walked as separate
// empty-held contexts (they may run on another goroutine or after return);
// this trades a little precision on immediately-invoked closures for never
// inventing a held set the runtime cannot see.
func (lo *lockorderPass) walkBody(body *ast.BlockStmt) {
	var held []heldLock
	deferred := make(map[*ast.CallExpr]bool)
	spawned := make(map[*ast.CallExpr]bool)
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, x)
			return false
		case *ast.DeferStmt:
			deferred[x.Call] = true
		case *ast.GoStmt:
			// The spawned call runs with an empty held set: its literal (if
			// any) is walked separately via the FuncLit case, and a named
			// callee is walked as its own declaration, so the call itself
			// must not record edges under the spawner's held locks.
			spawned[x.Call] = true
		case *ast.CallExpr:
			if !spawned[x] {
				lo.visitCall(x, &held, deferred[x])
			}
		}
		return true
	})
	for _, lit := range lits {
		lo.walkBody(lit.Body)
	}
}

// visitCall updates the held set and records edges for one call site.
func (lo *lockorderPass) visitCall(call *ast.CallExpr, held *[]heldLock, isDeferred bool) {
	if cls, method, ok := lo.mutexOp(call); ok {
		switch method {
		case "Lock", "RLock":
			for _, h := range *held {
				if h.cls.key != cls.key {
					continue
				}
				if method == "RLock" && h.rd {
					return // RLock under RLock: unordered against itself
				}
				if !lo.pass.Suppressed(call.Pos(), DirLockorderOK) {
					lo.pass.Reportf(call.Pos(), "re-entrant %s of %s: already held since %s (Go mutexes self-deadlock; unlock first or annotate the declaration //pythia:lockorder-ok)",
						method, cls.display, h.expr)
				}
				return
			}
			for _, h := range *held {
				lo.addEdge(h.cls, cls, call.Pos(), "acquired directly")
			}
			*held = append(*held, heldLock{cls: cls, expr: renderRecv(call), rd: method == "RLock"})
		case "Unlock", "RUnlock":
			if isDeferred {
				return // released at return: held for the rest of the body
			}
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i].cls.key == cls.key {
					*held = append((*held)[:i], (*held)[i+1:]...)
					break
				}
			}
		}
		return
	}
	if cls, ok := lo.wrapperCall(call); ok {
		for _, h := range *held {
			lo.addEdge(h.cls, cls, call.Pos(), "acquired for the duration of the call")
		}
		return
	}
	callee := lo.samePackageCallee(call)
	if callee == nil {
		return
	}
	fl, ok := lo.funcs[callee]
	if !ok || len(*held) == 0 {
		return
	}
	for _, h := range *held {
		for _, cls := range fl.acquires {
			if cls.key == h.cls.key {
				if !lo.pass.Suppressed(call.Pos(), DirLockorderOK) {
					lo.pass.Reportf(call.Pos(), "call to %s while holding %s: %s may acquire %s again (re-entrant deadlock; restructure so the callee runs with the lock released, use a caller-holds-lock helper, or annotate the declaration //pythia:lockorder-ok)",
						callee.Name(), h.cls.display, callee.Name(), cls.display)
				}
				continue
			}
			lo.addEdge(h.cls, cls, call.Pos(), "acquired via call to "+callee.Name())
		}
	}
}

// addEdge records one from→to ordering observation (self-edges are handled
// as re-entrancy at the site, never as graph edges).
func (lo *lockorderPass) addEdge(from, to lockClass, pos token.Pos, detail string) {
	if from.key == to.key {
		return
	}
	if lo.classes == nil {
		lo.classes = make(map[string]lockClass)
	}
	lo.classes[from.key] = from
	lo.classes[to.key] = to
	lo.edges = append(lo.edges, lockEdge{from: from.key, to: to.key, pos: pos, detail: detail})
}

// reportCycles finds strongly connected components in the recorded edge
// graph and reports every unsuppressed acquisition site whose edge stays
// inside one component — each of those sites participates in a cycle.
func (lo *lockorderPass) reportCycles() {
	var live []lockEdge
	for _, e := range lo.edges {
		if !lo.pass.Suppressed(e.pos, DirLockorderOK) {
			live = append(live, e)
		}
	}
	adj := make(map[string]map[string]bool)
	for _, e := range live {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	comp := sccs(adj)
	for _, e := range live {
		if comp[e.from] != 0 && comp[e.from] == comp[e.to] {
			members := make([]string, 0, 4)
			for key, c := range comp {
				if c == comp[e.from] {
					members = append(members, lo.classes[key].display)
				}
			}
			sort.Strings(members)
			lo.pass.Reportf(e.pos, "lock-order cycle among {%s}: %s %s while %s is held, but another path acquires them in the reverse order (pick one global order or annotate the declaration //pythia:lockorder-ok)",
				strings.Join(members, ", "), lo.classes[e.to].display, e.detail, lo.classes[e.from].display)
		}
	}
}

// sccs assigns a component id to every node in a non-trivial (size > 1)
// strongly connected component; nodes outside any cycle map to 0.
func sccs(adj map[string]map[string]bool) map[string]int {
	nodes := make([]string, 0, len(adj))
	seen := make(map[string]bool)
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, compID := 1, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(adj[v]))
		for to := range adj[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	for _, v := range nodes {
		if index[v] == 0 {
			strongconnect(v)
		}
	}
	return comp
}

// mutexOp classifies call as a sync.Mutex/sync.RWMutex method call,
// returning the receiver's lock class and the method name.
func (lo *lockorderPass) mutexOp(call *ast.CallExpr) (lockClass, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockClass{}, "", false
	}
	if !isSyncMutex(lo.info.TypeOf(sel.X)) {
		return lockClass{}, "", false
	}
	cls, ok := lo.classOf(sel.X)
	if !ok {
		return lockClass{}, "", false
	}
	return cls, sel.Sel.Name, true
}

// classOf maps a mutex-valued expression to its lock class.
func (lo *lockorderPass) classOf(e ast.Expr) (lockClass, bool) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		sel, ok := lo.info.Selections[x]
		if !ok {
			break
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok || !field.IsField() {
			break
		}
		owner := namedName(sel.Recv())
		if owner == "" {
			owner = lo.pass.Pkg.Fset.Position(field.Pos()).String()
		}
		key := owner + "." + field.Name()
		return lockClass{key: key, display: key}, true
	case *ast.Ident:
		obj, ok := lo.info.Uses[x].(*types.Var)
		if !ok {
			break
		}
		if obj.Parent() == lo.pass.Pkg.Types.Scope() {
			return lockClass{key: "var " + obj.Name(), display: obj.Name()}, true
		}
		// Local mutexes are keyed by declaration position so identically
		// named locals in different functions never merge into one class.
		return lockClass{
			key:     "local " + obj.Name() + "@" + lo.pass.Pkg.Fset.Position(obj.Pos()).String(),
			display: obj.Name(),
		}, true
	}
	return lockClass{}, false
}

// wrapperCall reports whether call invokes a method of a lock-wrapper type
// (lockWrappers), yielding the wrapped mutex's class.
func (lo *lockorderPass) wrapperCall(call *ast.CallExpr) (lockClass, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, false
	}
	t := lo.info.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return lockClass{}, false
	}
	rel := strings.TrimPrefix(named.Obj().Pkg().Path(), lo.pass.Pkg.Module+"/")
	if display, ok := lockWrappers[rel+"."+named.Obj().Name()]; ok {
		return lockClass{key: display, display: display}, true
	}
	return lockClass{}, false
}

// samePackageCallee resolves call to a function or method declared in the
// analyzed package, or nil.
func (lo *lockorderPass) samePackageCallee(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = lo.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = lo.info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != lo.pass.Pkg.Types {
		return nil
	}
	return fn
}

// goSubtrees collects the callee subtrees of every go statement in body so
// the summary walk can skip them.
func goSubtrees(body *ast.BlockStmt) map[ast.Node]bool {
	skip := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			skip[g.Call] = true
		}
		return true
	})
	return skip
}

// isSyncMutex reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// namedName returns the bare name of t's named type (through one pointer),
// or "".
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// renderRecv renders the mutex receiver of a Lock/Unlock call for messages.
func renderRecv(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return exprString(sel.X) + "." + sel.Sel.Name
	}
	return "Lock"
}
