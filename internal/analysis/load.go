package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset resolves positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info hold the go/types results.
	Types *types.Package
	Info  *types.Info
	// Deterministic marks the package as one whose results must be bitwise
	// reproducible; the driver sets it from DeterministicPackages (fixture
	// harnesses set it directly).
	Deterministic bool
	// Module is the module path the package was loaded under.
	Module string
	// Dep returns another already-loaded package of the same module by
	// import path (nil if it was never loaded). Analyzers that need a
	// dependency's syntax — metricsdrift reading obs's kindNames table —
	// use this instead of re-parsing; imports are always in the loader
	// cache by the time the importing package is analyzed.
	Dep func(path string) *Package
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Loader parses and type-checks module packages with the standard library
// resolved through the stdlib source importer — no external dependencies.
// One Loader caches every package it touches, so loading the whole module
// type-checks each import exactly once.
type Loader struct {
	Fset *token.FileSet

	root     string // module root directory
	module   string // module path
	std      types.ImporterFrom
	pkgs     map[string]*Package // loaded module packages, by import path
	checking map[string]bool     // cycle guard
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		root:     root,
		module:   modulePath,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:     make(map[string]*Package),
		checking: make(map[string]bool),
	}
}

// inModule reports whether path names a package of this module.
func (l *Loader) inModule(path string) bool {
	return path == l.module || strings.HasPrefix(path, l.module+"/")
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// ModulePackages walks the module tree and returns the import paths of every
// package directory, in sorted order. testdata trees, hidden directories,
// and dependency-free doc directories (no .go files) are skipped.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") || strings.HasSuffix(p, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.root, filepath.Dir(p))
		if err != nil {
			return err
		}
		path := l.module
		if rel != "." {
			path = l.module + "/" + filepath.ToSlash(rel)
		}
		out = append(out, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	// Dedupe (one entry per .go file was appended).
	uniq := out[:0]
	for i, p := range out {
		if i == 0 || out[i-1] != p {
			uniq = append(uniq, p)
		}
	}
	return uniq, nil
}

// Load parses and type-checks the module package at the given import path
// (loading its imports first). Results are cached.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if !l.inModule(path) {
		return nil, fmt.Errorf("analysis: %s is outside module %s", path, l.module)
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type errors in %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info, Module: l.module}
	p.Dep = func(dep string) *Package { return l.pkgs[dep] }
	l.pkgs[path] = p
	return p, nil
}

// loaderImporter adapts the Loader as a types importer: module-internal
// imports load through the loader, everything else (the standard library)
// through the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if l.inModule(path) {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
