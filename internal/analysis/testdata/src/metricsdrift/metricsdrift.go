// Package metricsdrift is the golden fixture for the metricsdrift
// analyzer: a miniature obs.Kind table with a missing entry, a Prometheus
// render function whose families drift from testdata/metrics.golden in
// both directions, and a suppressed family proving the escape is
// declaration-scoped.
package metricsdrift

import (
	"fmt"
	"io"
)

// Kind mirrors obs.Kind: a dense event enum sized by KindCount.
type Kind uint8

// The event kinds. EventC is deliberately missing from kindNames below.
const (
	EventA Kind = iota
	EventB
	EventC
	KindCount
)

var kindNames = [KindCount]string{ // want "Kind constant EventC has no kindNames entry"
	EventA: "event_a",
	EventB: "event_b",
}

// String renders the kind label.
func (k Kind) String() string {
	if k < KindCount {
		return kindNames[k]
	}
	return "unknown"
}

// render mirrors serve.writePrometheus. The golden next to this fixture
// (testdata/metrics.golden) knows a ghost family this function never
// emits, and its events rows cover event_a plus an unknown event_x — so
// every drift direction is represented.
func render(w io.Writer, served uint64) {
	fmt.Fprintln(w, "# HELP pythia_fixture_served_total Requests served.")
	fmt.Fprintln(w, "# TYPE pythia_fixture_served_total counter") // want "pythia_fixture_ghost_total appears in testdata/metrics.golden but is never emitted"
	fmt.Fprintf(w, "pythia_fixture_served_total %d\n", served)

	// A family declared but absent from the golden, with no HELP line.
	fmt.Fprintln(w, "# TYPE pythia_fixture_orphan_total counter") // want "no # HELP line" "missing from testdata/metrics.golden"
	fmt.Fprintf(w, "pythia_fixture_orphan_total %d\n", served)

	// A sample emitted without any # TYPE declaration.
	fmt.Fprintf(w, "pythia_fixture_rogue_total %d\n", served) // want "without a # TYPE declaration"

	fmt.Fprintln(w, "# HELP pythia_events_total Events by kind.")
	fmt.Fprintln(w, "# TYPE pythia_events_total counter")
	for k := Kind(0); k < KindCount; k++ {
		fmt.Fprintf(w, "pythia_events_total{kind=%q} %d\n", k.String(), 0) // want "event kind \"event_b\" has no pythia_events_total row" "row for unknown kind \"event_x\""
	}
}

// renderQuiet emits a family outside the golden under the escape; the
// directive covers this declaration only.
//
//pythia:metricsdrift-ok fixture: experimental family proving the escape is declaration-scoped
func renderQuiet(w io.Writer) {
	fmt.Fprintln(w, "# HELP pythia_fixture_quiet_total Experimental.")
	fmt.Fprintln(w, "# TYPE pythia_fixture_quiet_total counter")
	fmt.Fprintln(w, "pythia_fixture_quiet_total 0")
}
