// Package goleak is the golden fixture for the goleak analyzer: one
// goroutine per bounding idiom the serve tier uses (context, done channel,
// awaited WaitGroup, same-package named callee), the unbounded spawns the
// analyzer must flag, and both escape forms — declaration-scoped and
// statement-scoped — proving suppression never spills to a neighbor.
package goleak

import (
	"context"
	"sync"
)

// leak spawns a goroutine with no cancellation path at all.
func leak() {
	go func() { // want "not provably bounded"
		for {
		}
	}()
}

// ctxBound is the hedged-predict idiom: the body references a Context.
func ctxBound(ctx context.Context, out chan<- int) {
	go func() {
		select {
		case out <- 1:
		case <-ctx.Done():
		}
	}()
}

// doneBound is the batcher idiom: select on a struct{} stop channel.
func doneBound(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
}

// wgBound is the fan-out idiom: Done inside, Wait in the spawner.
func wgBound(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// runner loops on a struct{} channel; named spawns resolve to it.
type runner struct{ stop chan struct{} }

func (r *runner) run() {
	for {
		select {
		case <-r.stop:
			return
		}
	}
}

// namedBound is the `go b.run()` idiom: the callee's body is checked.
func namedBound(r *runner) {
	go r.run()
}

// leakNamed spawns a same-package function that never terminates.
func spin() {
	for {
	}
}

func leakNamed() {
	go spin() // want "not provably bounded"
}

// leakOK is a deliberate process-lifetime goroutine under the
// declaration-scoped escape.
//
//pythia:goleak-ok fixture: process-lifetime worker proving the declaration escape
func leakOK() {
	go func() { select {} }()
}

// leakLine mixes one escaped and one flagged spawn in a single function —
// the statement-scoped escape covers exactly one go statement.
func leakLine() {
	//pythia:goleak-ok fixture: statement-scoped escape
	go func() { select {} }()
	go func() { select {} }() // want "not provably bounded"
}
