// Package maporderok is a golden fixture for the //pythia:maporder-ok
// escape directive: suppression works and is scoped to the annotated
// declaration only.
package maporderok

// Annotated collects keys whose downstream consumer is order-insensitive;
// the directive silences mapiter for this declaration.
//
//pythia:maporder-ok feeds an order-insensitive set union
func Annotated(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// Unannotated must still be reported: the directive above does not leak.
func Unannotated(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}
