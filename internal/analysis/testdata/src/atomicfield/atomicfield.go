// Package atomicfield is the golden fixture for the atomicfield analyzer:
// a counter struct mixing a legacy atomic field (address passed to
// sync/atomic funcs) and a typed atomic, with plain accesses the analyzer
// must flag and a suppressed access proving the escape is
// declaration-scoped.
package atomicfield

import "sync/atomic"

// counter mixes both atomic flavors.
type counter struct {
	n     uint64 // legacy: touched via atomic.AddUint64/LoadUint64
	total atomic.Uint64
	name  string // never atomic: plain access stays legal
}

// inc makes n a legacy atomic field.
func (c *counter) inc() { atomic.AddUint64(&c.n, 1) }

// snapshot is the sanctioned read.
func (c *counter) snapshot() uint64 { return atomic.LoadUint64(&c.n) }

// read tears: a plain load races the atomic.AddUint64 in inc.
func (c *counter) read() uint64 {
	return c.n // want "plain access to field n"
}

// reset tears the other way: a plain store.
func (c *counter) reset() {
	c.n = 0 // want "plain access to field n"
}

// bump and load use the typed atomic correctly.
func (c *counter) bump()        { c.total.Add(1) }
func (c *counter) load() uint64 { return c.total.Load() }

// share takes the address — the value stays behind the atomic API.
func share(c *counter) *atomic.Uint64 { return &c.total }

// copyTotal copies the typed atomic out as a plain value.
func copyTotal(c *counter) uint64 {
	v := c.total // want "atomic field total used as a plain value"
	return v.Load()
}

// label is a plain field next to atomic ones: no diagnostic.
func label(c *counter) string { return c.name }

// peek reads n plainly under the escape (a sanctioned pre-publication
// read); suppression covers this declaration only.
//
//pythia:atomicfield-ok fixture: pre-publication read proving the escape is declaration-scoped
func peek(c *counter) uint64 { return c.n }

// peekLoud is the same read without the escape: still flagged.
func peekLoud(c *counter) uint64 {
	return c.n // want "plain access to field n"
}
