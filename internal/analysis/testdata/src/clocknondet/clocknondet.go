// Package clocknondet is a golden fixture analyzed as a NON-deterministic
// package (its directory name ends in "nondet"): the deterministic-only
// analyzers detclock and mapiter must stay silent on code that would be
// reported anywhere in the deterministic core. errdiscard still applies —
// it runs module-wide.
package clocknondet

import "time"

// config mirrors the repo's validated-config convention.
type config struct{ n int }

// Normalize validates and fills defaults.
func (c config) Normalize() (config, error) { return c, nil }

// Uptime reads the wall clock: fine outside the deterministic core.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Keys leaks map order: fine outside the deterministic core.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// DiscardNormalize is still reported: errdiscard is not scoped to
// deterministic packages.
func DiscardNormalize(c config) config {
	out, _ := c.Normalize() // want "error result of Normalize assigned to _"
	return out
}
