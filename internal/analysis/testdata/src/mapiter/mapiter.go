// Package mapiter is a golden fixture: map iterations whose order reaches
// an output are reported; order-independent loops and the collect-then-sort
// idiom are not.
package mapiter

import (
	"fmt"
	"sort"
	"strings"
)

// recorder stands in for an obs.Recorder-like event sink.
type recorder struct{ events []string }

func (r *recorder) Record(e string) { r.events = append(r.events, e) }

// AppendUnsorted leaks map order into the returned slice.
func AppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}

// CollectThenSort is the sanctioned idiom: the appended slice is sorted
// before use, so iteration order cannot reach the output.
func CollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EmitEvents leaks map order into an event log — the exact shape that
// corrupts a deterministic simulation timeline.
func EmitEvents(m map[string]int, r *recorder) {
	for k := range m {
		r.Record(k) // want "Record call inside range over map"
	}
}

// BuildString leaks map order into fmt output and a builder.
func BuildString(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d;", k, v) // want "fmt call inside range over map"
	}
	for k := range m {
		b.WriteString(k) // want "WriteString call inside range over map"
	}
	return b.String()
}

// SendKeys leaks map order into channel receive order.
func SendKeys(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "channel send inside range over map"
	}
}

// PlaceByCounter writes successive slice slots in map order.
func PlaceByCounter(m map[string]int) []string {
	out := make([]string, len(m))
	i := 0
	for k := range m {
		out[i] = k // want "write through slice index inside range over map"
		i++
	}
	return out
}

// SumValues is order-independent accumulation — not reported.
func SumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// InvertMap writes into another map — order-insensitive, not reported.
func InvertMap(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
