// Package errcheckok is a golden fixture for the //pythia:errcheck-ok
// escape directive: suppression works and is scoped to the annotated
// declaration only.
package errcheckok

// config mirrors the repo's validated-config convention.
type config struct{ n int }

// Normalize validates and fills defaults.
func (c config) Normalize() (config, error) { return c, nil }

// Annotated may discard: the zero config is valid by construction here.
//
//pythia:errcheck-ok zero config is statically valid
func Annotated() config {
	out, _ := config{}.Normalize()
	return out
}

// Unannotated must still be reported: the directive above does not leak.
func Unannotated() config {
	out, _ := config{}.Normalize() // want "error result of Normalize assigned to _"
	return out
}
