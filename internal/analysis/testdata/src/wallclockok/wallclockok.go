// Package wallclockok is a golden fixture for the //pythia:wallclock-ok
// escape directive: the annotated declaration is suppressed, and the
// directive is scoped to that declaration only — an identical violation in
// the next function is still reported.
package wallclockok

import "time"

// Annotated is genuinely wall-clock code; the directive silences detclock
// for this declaration.
//
//pythia:wallclock-ok measures real startup latency
func Annotated() time.Time {
	return time.Now()
}

// Unannotated sits right next to it and must still be reported: the
// directive above does not leak.
func Unannotated() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// AnnotatedVar shows the directive on a var declaration.
//
//pythia:wallclock-ok injectable indirection default
var AnnotatedVar = time.Now
