// Package lockorder is the golden fixture for the lockorder analyzer: a
// minimized replica pool / health monitor pair whose lock interaction
// mirrors internal/serve (Pool.Swap holds swapMu while the warm path takes
// health.mu), plus the seeded inversion and re-entrancy the analyzer must
// flag, and a suppressed inversion proving the escape is declaration-scoped.
package lockorder

import "sync"

// pool mirrors serve.Pool: swapMu serializes generation swaps.
type pool struct {
	swapMu sync.Mutex
	h      *health
}

// health mirrors serve.health: mu guards the scoring window.
type health struct {
	mu    sync.Mutex
	score int
	p     *pool
}

// swap holds swapMu across the warm path, establishing swapMu → health.mu —
// exactly the order Pool.Swap uses, legal on its own.
func (p *pool) swap() {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	p.h.success() // want "lock-order cycle"
}

// success locks health.mu directly; called under swapMu from swap.
func (h *health) success() {
	h.mu.Lock()
	h.score++
	h.mu.Unlock()
}

// report inverts the order: holding health.mu it calls back into the pool,
// which acquires swapMu — the ABBA cycle against swap.
func (h *health) report() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.p.freeze() // want "lock-order cycle"
}

// freeze acquires swapMu; fine alone, cyclic when reached under health.mu.
func (p *pool) freeze() {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
}

// relock double-locks the same mutex: guaranteed self-deadlock.
func (h *health) relock() {
	h.mu.Lock()
	h.mu.Lock() // want "re-entrant Lock"
	h.mu.Unlock()
	h.mu.Unlock()
}

// reenterViaCall holds health.mu and calls success, which locks it again.
func (h *health) reenterViaCall() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.success() // want "re-entrant deadlock"
}

// helper is the caller-holds-mu idiom (serve's maybeRecover/slide): no
// locking of its own, so calls to it under health.mu are clean.
func (h *health) helper() { h.score-- }

// scoped calls helper under the lock — no diagnostic.
func (h *health) scoped() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.helper()
}

// sequential locks one mutex after fully releasing the other: no edge.
func (p *pool) sequential() {
	p.swapMu.Lock()
	p.swapMu.Unlock()
	p.h.mu.Lock()
	p.h.mu.Unlock()
}

// spawned locks health.mu inside a goroutine while holding swapMu: spawned
// goroutines are unordered against the spawner, so no edge and no cycle.
func (p *pool) spawned(done chan struct{}) {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	go func() {
		p.h.mu.Lock()
		p.h.mu.Unlock()
		<-done
	}()
}

// quietReport is the same inversion as report but carries the escape; the
// directive drops this site's edge only — report's diagnostic stays.
//
//pythia:lockorder-ok fixture: deliberate inversion proving the escape is declaration-scoped
func (h *health) quietReport() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.p.freeze()
}
