// Package detclock is a golden fixture: wall-clock reads and global
// math/rand state in a deterministic package, each expected to be reported.
package detclock

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock twice.
func Elapsed() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	time.Sleep(time.Second)  // want "time.Sleep reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

// AsValue takes the function value, which is just as nondeterministic.
var AsValue = time.Now // want "time.Now reads the wall clock"

// GlobalRand draws from the process-global math/rand source.
func GlobalRand() int {
	return rand.Intn(10) // want "rand.Intn uses the global math/rand source"
}

// SeededRand constructs an explicitly seeded generator — the deterministic
// idiom, not reported.
func SeededRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// TypesOnly uses the time package for types and arithmetic only — allowed.
func TypesOnly(d time.Duration) time.Time {
	var t time.Time
	return t.Add(d * 2)
}
