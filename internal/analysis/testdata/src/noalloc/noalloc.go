// Package noalloc is a golden fixture: every per-call allocating construct
// class inside a //pythia:noalloc function is reported; the same code in an
// unannotated function is not (the annotation is the opt-in), and the
// allocation-free idioms of the real hot path stay silent.
package noalloc

import "fmt"

// event mirrors obs.Event: a small value struct passed by value.
type event struct {
	kind int
	page int64
}

// sink mirrors obs.Recorder.
type sink interface {
	Record(e event)
}

// counter is a concrete recorder.
type counter struct{ n [4]uint64 }

// Record mirrors the real counting recorder: array increment only.
//
//pythia:noalloc
func (c *counter) Record(e event) {
	if e.kind < len(c.n) {
		c.n[e.kind]++
	}
}

// emit mirrors the real emit sites: nil-check plus a value-struct literal
// passed by value through an interface — no allocation, not reported.
//
//pythia:noalloc
func emit(s sink, kind int, page int64) {
	if s != nil {
		s.Record(event{kind: kind, page: page})
	}
}

// hotViolations packs one violation per construct class.
//
//pythia:noalloc
func hotViolations(s sink, vals []float64) *event {
	e := &event{kind: 1}        // want "escaping composite literal"
	m := map[int]bool{1: true}  // want "map literal allocates"
	sl := []float64{1, 2, 3}    // want "slice literal allocates its backing array"
	msg := fmt.Sprintf("%v", m) // want "fmt call allocates"
	f := func() float64 {       // want `func literal captures local "vals"`
		return vals[0]
	}
	var boxed interface{}
	boxed = f() // want "implicit interface conversion in assignment"
	_ = boxed
	_ = msg
	_ = sl
	recordAny(len(msg)) // want "concrete value passed to interface parameter"
	return e
}

// toInterface converts explicitly on return.
//
//pythia:noalloc
func toInterface(e event) interface{} {
	return e // want "implicit interface conversion in return"
}

// coldTwin is the identical code without the annotation: noalloc is opt-in,
// nothing is reported here.
func coldTwin(s sink, vals []float64) *event {
	e := &event{kind: 1}
	m := map[int]bool{1: true}
	msg := fmt.Sprintf("%v", m)
	f := func() float64 { return vals[0] }
	var boxed interface{}
	boxed = f()
	_ = boxed
	_ = msg
	recordAny(len(msg))
	_ = s
	return e
}

// recordAny has an interface parameter, so concrete arguments box.
func recordAny(v interface{}) { _ = v }

// accumulate mirrors the real kernels: destination-passing loops, arena-style
// append recycling, and builtin growth are all allowed.
//
//pythia:noalloc
func accumulate(dst, a, b []float64, free [][]float64) [][]float64 {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
	free = append(free, dst)
	return free
}
