// Package errdiscard is a golden fixture: discarded error results of the
// checked construction APIs (plan.Planner.Plan, workload.Build, and any
// Normalize) are reported; handled errors and the Must variants are not.
// The fixture is type-checked and analyzed, never executed.
package errdiscard

import (
	"github.com/pythia-db/pythia/internal/catalog"
	"github.com/pythia-db/pythia/internal/plan"
	"github.com/pythia-db/pythia/internal/workload"
)

// config mirrors the repo's validated-config convention.
type config struct{ n int }

// Normalize validates and fills defaults.
func (c config) Normalize() (config, error) { return c, nil }

// DiscardPlanError throws the planner's error away.
func DiscardPlanError(pl *plan.Planner, q plan.Query) *plan.Node {
	n, _ := pl.Plan(q) // want "error result of plan.Planner.Plan assigned to _"
	return n
}

// DropPlanEntirely discards result and error both.
func DropPlanEntirely(pl *plan.Planner, q plan.Query) {
	pl.Plan(q) // want "result and error of plan.Planner.Plan discarded"
}

// DiscardBuildError throws the workload builder's error away.
func DiscardBuildError(db *catalog.Database, qs []plan.Query) *workload.Workload {
	w, _ := workload.Build("w", db, qs) // want "error result of workload.Build assigned to _"
	return w
}

// DiscardNormalizeError throws a Normalize validation error away.
func DiscardNormalizeError(c config) config {
	out, _ := c.Normalize() // want "error result of Normalize assigned to _"
	return out
}

// HandledErrors is the correct shape — nothing reported.
func HandledErrors(pl *plan.Planner, q plan.Query, c config) (*plan.Node, error) {
	if _, err := c.Normalize(); err != nil {
		return nil, err
	}
	return pl.Plan(q)
}

// MustVariant uses the valid-by-construction API — nothing reported.
func MustVariant(pl *plan.Planner, q plan.Query) *plan.Node {
	return pl.MustPlan(q)
}
