package analysis

import (
	"go/ast"
	"go/types"
)

// Noalloc checks functions annotated //pythia:noalloc — the arena/kernel hot
// path and the obs event sites, where one allocation per call puts the
// garbage collector on the training or replay profile. The analyzer is a
// shallow per-function check for the construct classes that heap-allocate
// on every execution:
//
//   - composite literals whose address is taken (&T{...}) and map/slice
//     literals (backing-store allocation);
//   - fmt and log calls (interface boxing plus formatting buffers);
//   - func literals capturing local variables (closure allocation);
//   - interface conversions, explicit or implicit (convT boxing), in calls,
//     assignments, and returns.
//
// Amortized-growth appends and arena-recycled buffers are deliberately
// allowed: the arena's free lists are exactly how the hot path stays
// allocation-free in steady state (see internal/nn/arena.go and
// TestArenaSteadyStateAllocs). Opting a function in is the annotation
// itself; opting out is removing it.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "annotated //pythia:noalloc functions must not allocate per call",
	Run:  runNoalloc,
}

func runNoalloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn, DirNoalloc) {
				continue
			}
			checkNoalloc(pass, fn)
		}
	}
}

func checkNoalloc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	sig, _ := info.Defs[fn.Name].(*types.Func)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if lit, ok := x.X.(*ast.CompositeLit); ok && x.Op.String() == "&" {
				pass.Reportf(lit.Pos(), "escaping composite literal (&%s{...}) in //pythia:noalloc function %s", typeName(info, lit), fn.Name.Name)
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(x.Pos(), "map literal allocates in //pythia:noalloc function %s", fn.Name.Name)
				case *types.Slice:
					pass.Reportf(x.Pos(), "slice literal allocates its backing array in //pythia:noalloc function %s", fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkNoallocCall(pass, fn, x)
		case *ast.FuncLit:
			if v := capturedLocal(info, pass.Pkg.Types, x); v != nil {
				pass.Reportf(x.Pos(), "func literal captures local %q (closure allocation) in //pythia:noalloc function %s", v.Name(), fn.Name.Name)
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i < len(x.Rhs) && isInterfaceConversion(info, info.TypeOf(lhs), x.Rhs[i]) {
					pass.Reportf(x.Rhs[i].Pos(), "implicit interface conversion in assignment (boxing allocation) in //pythia:noalloc function %s", fn.Name.Name)
				}
			}
		case *ast.ReturnStmt:
			if sig == nil {
				return true
			}
			results := sig.Type().(*types.Signature).Results()
			if len(x.Results) != results.Len() {
				return true
			}
			for i, res := range x.Results {
				if isInterfaceConversion(info, results.At(i).Type(), res) {
					pass.Reportf(res.Pos(), "implicit interface conversion in return (boxing allocation) in //pythia:noalloc function %s", fn.Name.Name)
				}
			}
		}
		return true
	})
}

// checkNoallocCall flags fmt/log calls, explicit conversions to interface
// types, and concrete arguments passed to interface parameters.
func checkNoallocCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Pkg.Info
	if pkg, ok := calleePackageFunc(info, call); ok && (pkg == "fmt" || pkg == "log") {
		pass.Reportf(call.Pos(), "%s call allocates in //pythia:noalloc function %s", pkg, fn.Name.Name)
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsBuiltin() {
		return
	}
	if tv.IsType() {
		if len(call.Args) == 1 && isInterfaceConversion(info, tv.Type, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface type (boxing allocation) in //pythia:noalloc function %s", fn.Name.Name)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last
			} else if s, ok := last.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if isInterfaceConversion(info, pt, arg) {
			pass.Reportf(arg.Pos(), "concrete value passed to interface parameter (boxing allocation) in //pythia:noalloc function %s", fn.Name.Name)
		}
	}
}

// isInterfaceConversion reports whether assigning src to a destination of
// type dst boxes a concrete value into an interface.
func isInterfaceConversion(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[src]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return false
	}
	return !types.IsInterface(tv.Type)
}

// capturedLocal returns a local variable (declared outside lit but not at
// package scope) that lit's body references, or nil.
func capturedLocal(info *types.Info, pkg *types.Package, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pkg.Scope() || v.Pkg() != pkg {
			return true // package-level or foreign: no closure capture cost
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v
		}
		return true
	})
	return captured
}

// typeName renders a composite literal's type for messages.
func typeName(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.TypeOf(lit); t != nil {
		return t.String()
	}
	return "T"
}
