package analysis

import (
	"go/ast"
	"go/types"
)

// Atomicfield enforces all-or-nothing atomicity on struct fields: a field
// that is ever accessed through sync/atomic must never be read or written
// plainly. Mixing the two is how torn reads slip into the serve tier — a
// goroutine loads half-written state the race detector only catches if a
// test happens to interleave the right pair of accesses. Two field
// flavors are covered:
//
//   - legacy atomics: a plain-typed field whose address is passed to a
//     sync/atomic function (atomic.AddUint64(&s.n, 1)) anywhere in the
//     package makes every other plain use of that field a violation;
//   - typed atomics (atomic.Int64, atomic.Uint64, atomic.Pointer[T], ...):
//     the only legal uses are method calls (s.n.Load()) and taking the
//     address (&s.n); copying or reassigning the value defeats the type.
//
// Fields are identified with go/types, so every instance of a struct field
// is covered regardless of receiver. Deliberate exceptions — a constructor
// writing before publication, a test hook — carry //pythia:atomicfield-ok
// <reason> on the enclosing declaration.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicfield,
}

func runAtomicfield(pass *Pass) {
	info := pass.Pkg.Info
	// Pass 1: find legacy atomic fields — fields whose address reaches a
	// sync/atomic call — and remember those sanctioned selector nodes.
	legacy := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, ok := calleePackageFunc(info, call); !ok || pkg != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := fieldOf(info, sel); field != nil {
					legacy[field] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: every selector of a legacy field outside its sanctioned sites,
	// and every plain-value use of a typed-atomic field, is a violation.
	for _, f := range pass.Pkg.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldOf(info, sel)
			if field == nil {
				return true
			}
			switch {
			case legacy[field]:
				if sanctioned[sel] || pass.Suppressed(sel.Pos(), DirAtomicfieldOK) {
					return true
				}
				pass.Reportf(sel.Pos(), "plain access to field %s, which is accessed with sync/atomic elsewhere in the package (torn read/write; use the atomic API or annotate the declaration //pythia:atomicfield-ok)", field.Name())
			case isAtomicType(field.Type()):
				switch p := parents[sel].(type) {
				case *ast.SelectorExpr:
					if p.X == sel {
						return true // method call or method value: s.n.Load
					}
				case *ast.UnaryExpr:
					if p.Op.String() == "&" {
						return true // address taken: &s.n stays atomic
					}
				}
				if pass.Suppressed(sel.Pos(), DirAtomicfieldOK) {
					return true
				}
				pass.Reportf(sel.Pos(), "atomic field %s used as a plain value (copying or reassigning %s defeats its atomicity; call its methods, or annotate the declaration //pythia:atomicfield-ok)", field.Name(), field.Type().String())
			}
			return true
		})
	}
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return nil
	}
	return field
}

// isAtomicType reports whether t is one of sync/atomic's typed atomics
// (atomic.Int64, atomic.Uint64, atomic.Bool, atomic.Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// parentMap builds a child→parent node index for one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
