package analysis

import "strings"

// DeterministicPackages lists the module-relative import paths whose results
// must be bitwise reproducible: everything that executes under the virtual
// clock or computes model state. detclock and mapiter run only here; noalloc
// and errdiscard run module-wide (annotation- and callee-driven).
//
// serve, the CLI mains, experiments, and wallclock are deliberately absent:
// they are the repo's sanctioned wall-clock surface.
var DeterministicPackages = []string{
	"internal/sim",
	"internal/replay",
	"internal/buffer",
	"internal/oscache",
	"internal/nn",
	"internal/model",
	"internal/seqmodel",
	"internal/scheduler",
	"internal/fault",
	"internal/exec",
	"internal/storage",
	"internal/predictor",
	"internal/span",
}

// IsDeterministic reports whether the import path (under the given module
// path) is one of the deterministic packages.
func IsDeterministic(modulePath, pkgPath string) bool {
	rel := strings.TrimPrefix(pkgPath, modulePath+"/")
	for _, p := range DeterministicPackages {
		if rel == p {
			return true
		}
	}
	return false
}
