package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goleak requires every `go` statement to be provably bounded. An unbounded
// goroutine is a slow leak: each model swap or request that spawns one
// pins its stack and captures until process exit, and the serve tier spawns
// goroutines on the request path (hedging) and the swap path (draining).
// This is also the guardrail the planned online-training background
// goroutine (ROADMAP item 4) lands behind. A goroutine counts as bounded
// when its body — a function literal, or a same-package function the
// statement calls — shows one of:
//
//   - a reference to a context.Context (cancellation is plumbed in);
//   - a receive from a struct{} channel (done/stop channels, ctx.Done()),
//     in a select or as a plain receive or range;
//   - a sync.WaitGroup Done whose WaitGroup is Wait-ed somewhere in the
//     package (the spawner joins it).
//
// Everything else needs //pythia:goleak-ok <reason> — on the enclosing
// declaration, or (because one function often spawns both bounded and
// unbounded goroutines) as a comment on the go statement's line or the
// line immediately above it. Test files are outside the loader's scope,
// so test-only goroutines are never flagged.
var Goleak = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement must be provably bounded or annotated",
	Run:  runGoleak,
}

func runGoleak(pass *Pass) {
	info := pass.Pkg.Info
	decls := packageFuncDecls(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		okLines := goleakOKLines(pass.Pkg.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			line := pass.Pkg.Fset.Position(g.Pos()).Line
			if okLines[line] || okLines[line-1] || pass.Suppressed(g.Pos(), DirGoleakOK) {
				return true
			}
			body := goBody(info, decls, g)
			if body != nil && boundedBody(pass.Pkg, info, body) {
				return true
			}
			what := "goroutine"
			if body == nil {
				what = "goroutine calling outside the package"
			}
			pass.Reportf(g.Pos(), "%s is not provably bounded: no context.Context reference, no struct{}-channel receive, no awaited WaitGroup (bound it, or annotate the go statement or declaration //pythia:goleak-ok <reason>)", what)
			return true
		})
	}
}

// goleakOKLines maps the lines carrying a //pythia:goleak-ok comment, the
// statement-scoped escape form.
func goleakOKLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, directivePrefix+DirGoleakOK) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// packageFuncDecls indexes the package's function declarations by object.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// goBody resolves the spawned function's body: a literal's body directly,
// a named same-package function or method through its declaration. Calls
// into other packages (go srv.Serve(ln)) are unresolvable and return nil.
func goBody(info *types.Info, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if fd, ok := decls[fn]; ok {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if fd, ok := decls[fn]; ok {
				return fd.Body
			}
		}
	}
	return nil
}

// boundedBody reports whether body shows one of the recognized bounding
// constructs.
func boundedBody(pkg *Package, info *types.Info, body *ast.BlockStmt) bool {
	bounded := false
	var wgDones []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if isContextType(info.TypeOf(x)) {
				bounded = true
			}
		case *ast.SelectorExpr:
			if isContextType(info.TypeOf(x)) {
				bounded = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && isStructChan(info.TypeOf(x.X)) {
				bounded = true
			}
		case *ast.RangeStmt:
			if isStructChan(info.TypeOf(x.X)) {
				bounded = true
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isWaitGroup(info.TypeOf(sel.X)) {
				if obj := refObject(info, sel.X); obj != nil {
					wgDones = append(wgDones, obj)
				}
			}
		}
		return true
	})
	if bounded {
		return true
	}
	for _, wg := range wgDones {
		if waitedInPackage(pkg, wg) {
			return true
		}
	}
	return false
}

// waitedInPackage reports whether wg.Wait() is called anywhere in the
// package on the same WaitGroup object the goroutine Done()s.
func waitedInPackage(pkg *Package, wg types.Object) bool {
	found := false
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Wait" {
				return true
			}
			if refObject(pkg.Info, sel.X) == wg {
				found = true
			}
			return true
		})
		if found {
			break
		}
	}
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isStructChan reports whether t is a channel of struct{} — the done/stop
// channel idiom (and the type of ctx.Done()).
func isStructChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isWaitGroup reports whether t (or *t) is sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
