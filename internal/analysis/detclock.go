package analysis

import (
	"go/ast"
	"go/types"
)

// Detclock forbids wall-clock reads and global math/rand state in
// deterministic packages. The virtual-clock simulation's results are only
// meaningful if two runs of the same seed are bitwise identical; one stray
// time.Now or rand.Intn silently breaks that. Wall-clock cost measurement
// (train/inference timing) must route through the internal/wallclock
// indirection so it is injectable and greppable; declarations that genuinely
// need the wall clock carry //pythia:wallclock-ok.
var Detclock = &Analyzer{
	Name:          "detclock",
	Doc:           "no wall-clock or global math/rand in deterministic packages",
	Deterministic: true,
	Run:           runDetclock,
}

// wallClockFuncs are the time package functions that read or wait on the
// wall clock. Referencing one (call or function value) is a violation.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand names that do NOT touch the global
// source: constructing an explicitly seeded generator is the deterministic
// idiom (sim.Rand wraps exactly that).
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDetclock(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := info.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgName.Imported().Path() {
			case "time":
				if wallClockFuncs[name] && !pass.Suppressed(sel.Pos(), DirWallclockOK) {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock in deterministic package %q (use sim virtual time, route measurement through internal/wallclock, or annotate the declaration //pythia:wallclock-ok)", name, pass.Pkg.Types.Name())
				}
			case "math/rand", "math/rand/v2":
				obj := info.Uses[sel.Sel]
				if _, isFunc := obj.(*types.Func); isFunc && !randConstructors[name] && !pass.Suppressed(sel.Pos(), DirWallclockOK) {
					pass.Reportf(sel.Pos(), "rand.%s uses the global math/rand source in deterministic package %q (use sim.NewRand or an explicitly seeded rand.New)", name, pass.Pkg.Types.Name())
				}
			}
			return true
		})
	}
}
