// Package analysis is pythia-vet's engine: a dependency-free static-analysis
// suite that enforces the repo's determinism, allocation, and error-handling
// invariants at compile time instead of hoping a test tickles a violation.
//
// Eight analyzers run over every package of the module:
//
//   - detclock: no wall-clock reads (time.Now/Since/Sleep/...) or global
//     math/rand state in deterministic packages. Wall-clock cost measurement
//     routes through the injectable internal/wallclock indirection;
//     genuinely wall-clock declarations carry //pythia:wallclock-ok.
//   - mapiter: no `range` over a map whose iteration order can reach an
//     output (slice append, event emission, string building, channel send)
//     in deterministic packages. The collect-then-sort idiom is recognized
//     and allowed; order-independent loops can carry //pythia:maporder-ok.
//   - noalloc: functions annotated //pythia:noalloc (the arena/kernel hot
//     path, obs event sites) may not contain escaping composite literals,
//     fmt/log calls, closures capturing locals, or interface conversions.
//   - errdiscard: the error results of plan.Planner.Plan, workload.Build,
//     and any Normalize() may not be discarded.
//   - lockorder: mutex acquisitions must follow one global order — no
//     acquisition cycles, no re-entrant Lock on a held mutex, directly or
//     through same-package calls. //pythia:lockorder-ok escapes one site.
//   - atomicfield: a struct field accessed through sync/atomic (legacy
//     funcs or atomic.Int64/Pointer method calls) must never be read or
//     written plainly. //pythia:atomicfield-ok escapes one declaration.
//   - goleak: every `go` statement must be provably bounded — select on a
//     context/done channel, awaited WaitGroup, or //pythia:goleak-ok.
//   - metricsdrift: Prometheus families emitted in source must match
//     testdata/metrics.golden, and every obs.Kind constant must have a
//     kindNames entry with a matching events row in the golden.
//
// The loader (load.go) builds the module's package graph with go/parser and
// go/types only — no golang.org/x/tools dependency — so `go run
// ./cmd/pythia-vet ./...` works on a bare toolchain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position // resolved file:line:col
	Analyzer string         // reporting analyzer's name
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and docs.
	Name string
	// Doc is a one-line description.
	Doc string
	// Deterministic restricts the analyzer to packages the driver marked
	// deterministic (Package.Deterministic).
	Deterministic bool
	// Run inspects the package and reports through the pass.
	Run func(*Pass)
}

// All lists every analyzer in the suite, in reporting order.
var All = []*Analyzer{Detclock, Mapiter, Noalloc, Errdiscard, Lockorder, Atomicfield, Goleak, Metricsdrift}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether the top-level declaration enclosing pos carries
// the given //pythia: directive. Directives are scoped to the annotated
// declaration only: a directive on one function never silences another.
func (p *Pass) Suppressed(pos token.Pos, directive string) bool {
	for _, f := range p.Pkg.Files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if pos >= decl.Pos() && pos <= decl.End() {
				return hasDirective(decl, directive)
			}
		}
	}
	return false
}

// Run executes the analyzer over pkg, appending diagnostics via report.
func (a *Analyzer) run(pkg *Package, report func(Diagnostic)) {
	if a.Deterministic && !pkg.Deterministic {
		return
	}
	a.Run(&Pass{Analyzer: a, Pkg: pkg, report: report})
}

// Analyze runs this one analyzer over pkg and returns its diagnostics in
// source order. The pythia-vet driver uses it to time analyzers
// individually; RunAll is the all-in-one entry point.
func (a *Analyzer) Analyze(pkg *Package) []Diagnostic {
	var out []Diagnostic
	a.run(pkg, func(d Diagnostic) { out = append(out, d) })
	SortDiagnostics(out)
	return out
}

// RunAll executes every analyzer in All over pkg and returns the
// diagnostics in source order.
func RunAll(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, a := range All {
		a.run(pkg, func(d Diagnostic) { out = append(out, d) })
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// enclosingFunc returns the innermost FuncDecl of f containing pos, or nil.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && pos >= fd.Pos() && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
