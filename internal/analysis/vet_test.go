package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures runs the analyzer suite over every golden fixture package
// under testdata/src and reconciles diagnostics with the // want comments —
// including one fixture per escape directive proving suppression is scoped
// to the annotated declaration only, and a nondet fixture proving the
// deterministic-only analyzers stay silent elsewhere.
func TestFixtures(t *testing.T) {
	root, module := moduleRoot(t)
	reports, err := RunFixtures(root, module, filepath.Join(root, "internal", "analysis", "testdata"))
	if err != nil {
		t.Fatalf("RunFixtures: %v", err)
	}
	wantFixtures := map[string]bool{
		"detclock":     false,
		"wallclockok":  false,
		"mapiter":      false,
		"maporderok":   false,
		"noalloc":      false,
		"errdiscard":   false,
		"errcheckok":   false,
		"clocknondet":  false,
		"lockorder":    false,
		"atomicfield":  false,
		"goleak":       false,
		"metricsdrift": false,
	}
	for _, r := range reports {
		if _, ok := wantFixtures[r.Name]; ok {
			wantFixtures[r.Name] = true
		}
		for _, p := range r.Problems {
			t.Errorf("fixture %s: %s", r.Name, p)
		}
	}
	for name, seen := range wantFixtures {
		if !seen {
			t.Errorf("fixture %s missing from testdata/src", name)
		}
	}
}

// TestSeededViolations builds a scratch module shaped like this repo and
// seeds one deliberate violation per analyzer — wall-clock in internal/sim,
// a map-range feeding an event append in internal/replay, an allocation
// inside a //pythia:noalloc function in internal/nn, a discarded
// Planner.Plan error, a re-entrant Lock, a torn atomic-field read, an
// unbounded goroutine, and a Prometheus family missing from its golden —
// then asserts each is reported with its file:line. Every escape directive
// is exercised alongside its violation: the suppressed twin must stay
// silent while the seeded site is still reported.
func TestSeededViolations(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/seeded\n\ngo 1.22\n",
		"internal/sim/clock.go": `package sim

import "time"

// Now leaks the wall clock into the virtual-time engine.
func Now() int64 {
	return time.Now().UnixNano() // MARK:detclock
}
`,
		"internal/replay/emit.go": `package replay

// Log is an append-only event log.
type Log struct{ events []int }

// Record appends one event.
func (l *Log) Record(e int) { l.events = append(l.events, e) }

// Flush emits pending entries in map order.
func Flush(pending map[int]int, l *Log) {
	for k := range pending {
		l.Record(k) // MARK:mapiter
	}
}
`,
		"internal/nn/hot.go": `package nn

// Scratch returns a fresh buffer.
//
//pythia:noalloc
func Scratch() *[4]float64 {
	return &[4]float64{} // MARK:noalloc
}
`,
		"internal/plan/plan.go": `package plan

import "errors"

// Node is a plan node.
type Node struct{}

// Query is a query.
type Query struct{}

// Planner plans queries.
type Planner struct{}

// Plan may fail.
func (p *Planner) Plan(q Query) (*Node, error) { return nil, errors.New("no") }
`,
		"caller/caller.go": `package caller

import "example.com/seeded/internal/plan"

// Drop throws the planner error away.
func Drop(pl *plan.Planner, q plan.Query) *plan.Node {
	n, _ := pl.Plan(q) // MARK:errdiscard
	return n
}
`,
		"internal/srv/locks.go": `package srv

import "sync"

// Gate serializes admissions.
type Gate struct{ mu sync.Mutex }

// Admit double-locks the gate.
func (g *Gate) Admit() {
	g.mu.Lock()
	g.mu.Lock() // MARK:lockorder
	g.mu.Unlock()
	g.mu.Unlock()
}

// AdmitQuiet is the suppressed twin: same re-entrancy, escaped.
//
//pythia:lockorder-ok seeded: proving the escape silences only this declaration
func (g *Gate) AdmitQuiet() {
	g.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	g.mu.Unlock()
}
`,
		"internal/srv/counter.go": `package srv

import "sync/atomic"

// Counter counts admissions.
type Counter struct{ n uint64 }

// Inc is the atomic writer.
func (c *Counter) Inc() { atomic.AddUint64(&c.n, 1) }

// Read tears: a plain load racing Inc.
func (c *Counter) Read() uint64 {
	return c.n // MARK:atomicfield
}

// ReadQuiet is the suppressed twin.
//
//pythia:atomicfield-ok seeded: proving the escape silences only this declaration
func (c *Counter) ReadQuiet() uint64 { return c.n }
`,
		"internal/srv/spawn.go": `package srv

// Spin leaks a goroutine with no cancellation path.
func Spin() {
	go func() { // MARK:goleak
		for {
		}
	}()
}

// SpinQuiet is the suppressed twin, using the statement-scoped escape.
func SpinQuiet() {
	//pythia:goleak-ok seeded: proving the statement escape silences only this spawn
	go func() {
		for {
		}
	}()
}
`,
		"internal/mx/mx.go": `package mx

import (
	"fmt"
	"io"
)

// Render emits two families; the golden only knows the first.
func Render(w io.Writer, n uint64) {
	fmt.Fprintln(w, "# HELP pythia_mx_total Things.")
	fmt.Fprintln(w, "# TYPE pythia_mx_total counter")
	fmt.Fprintf(w, "pythia_mx_total %d\n", n)
	fmt.Fprintln(w, "# HELP pythia_mx_new_total New things.")
	fmt.Fprintln(w, "# TYPE pythia_mx_new_total counter") // MARK:metricsdrift
	fmt.Fprintf(w, "pythia_mx_new_total %d\n", n)
}

// RenderQuiet is the suppressed twin: a family outside the golden.
//
//pythia:metricsdrift-ok seeded: proving the escape silences only this declaration
func RenderQuiet(w io.Writer, n uint64) {
	fmt.Fprintln(w, "# HELP pythia_mx_quiet_total Quiet things.")
	fmt.Fprintln(w, "# TYPE pythia_mx_quiet_total counter")
	fmt.Fprintf(w, "pythia_mx_quiet_total %d\n", n)
}
`,
		"internal/mx/testdata/metrics.golden": `# HELP pythia_mx_total Things.
# TYPE pythia_mx_total counter
pythia_mx_total 0
`,
		"internal/obsk/kinds.go": `package obsk

// Kind identifies one event type.
type Kind uint8

// The event kinds.
const (
	EventA Kind = iota
	EventB
	KindCount
)

// kindNames deliberately omits EventB: its String() renders empty and the
// kind vanishes from /metrics.
var kindNames = map[Kind]string{ // MARK:kindnames
	EventA: "event_a",
}

// String names the kind.
func (k Kind) String() string { return kindNames[k] }
`,
	}
	for name, content := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	loader := NewLoader(dir, "example.com/seeded")
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("ModulePackages: %v", err)
	}
	var diags []Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("Load %s: %v", path, err)
		}
		pkg.Deterministic = IsDeterministic("example.com/seeded", path)
		diags = append(diags, RunAll(pkg)...)
	}

	expect := []struct {
		analyzer string
		file     string
		mark     string
	}{
		{"detclock", "internal/sim/clock.go", "MARK:detclock"},
		{"mapiter", "internal/replay/emit.go", "MARK:mapiter"},
		{"noalloc", "internal/nn/hot.go", "MARK:noalloc"},
		{"errdiscard", "caller/caller.go", "MARK:errdiscard"},
		{"lockorder", "internal/srv/locks.go", "MARK:lockorder"},
		{"atomicfield", "internal/srv/counter.go", "MARK:atomicfield"},
		{"goleak", "internal/srv/spawn.go", "MARK:goleak"},
		{"metricsdrift", "internal/mx/mx.go", "MARK:metricsdrift"},
		// The kind-coverage arm of metricsdrift: a Kind constant deliberately
		// omitted from the kindNames table must be reported at the table.
		{"metricsdrift", "internal/obsk/kinds.go", "MARK:kindnames"},
	}
	if len(diags) != len(expect) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(expect))
	}
	for _, e := range expect {
		wantLine := markLine(t, files[e.file], e.mark)
		found := false
		for _, d := range diags {
			if d.Analyzer != e.analyzer || !strings.HasSuffix(filepath.ToSlash(d.Pos.Filename), e.file) {
				continue
			}
			found = true
			if d.Pos.Line != wantLine {
				t.Errorf("%s: reported at line %d, want %d (%s)", e.analyzer, d.Pos.Line, wantLine, d.Message)
			}
		}
		if !found {
			t.Errorf("%s: seeded violation in %s not reported", e.analyzer, e.file)
		}
	}
}

// TestRepoClean is the CI invariant as a unit test: the whole module must
// run clean under the suite (every real violation has been fixed, every
// sanctioned wall-clock read routed or annotated).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, module := moduleRoot(t)
	loader := NewLoader(root, module)
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatalf("ModulePackages: %v", err)
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("Load %s: %v", path, err)
		}
		pkg.Deterministic = IsDeterministic(module, path)
		for _, d := range RunAll(pkg) {
			t.Errorf("%s", d)
		}
	}
}

// TestIsDeterministic pins the package split: the simulation core is
// checked, the serving tier and sanctioned wall-clock packages are not.
func TestIsDeterministic(t *testing.T) {
	const m = "github.com/pythia-db/pythia"
	for _, p := range DeterministicPackages {
		if !IsDeterministic(m, m+"/"+p) {
			t.Errorf("IsDeterministic(%s) = false, want true", p)
		}
	}
	for _, p := range []string{"internal/serve", "internal/wallclock", "internal/experiments", "cmd/pythia-serve", "internal/analysis"} {
		if IsDeterministic(m, m+"/"+p) {
			t.Errorf("IsDeterministic(%s) = true, want false", p)
		}
	}
}

// moduleRoot locates the enclosing module from the test's working directory.
func moduleRoot(t *testing.T) (root, module string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, module, err = FindModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	return root, module
}

// markLine returns the 1-based line containing the marker.
func markLine(t *testing.T, content, mark string) int {
	t.Helper()
	for i, line := range strings.Split(content, "\n") {
		if strings.Contains(line, mark) {
			return i + 1
		}
	}
	t.Fatalf("marker %s not found", mark)
	return 0
}
