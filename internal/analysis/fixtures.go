package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// The fixture harness runs the full analyzer suite over golden packages
// under testdata/src/<name> and checks the diagnostics against expectation
// comments in the fixture source:
//
//	rows = append(rows, k) // want "append to rows inside range over map"
//
// Each `// want "re" ["re" ...]` comment expects, on its own line, one
// diagnostic matching each quoted regular expression — no more, no fewer.
// A fixture whose directory name ends in "nondet" is analyzed as a
// non-deterministic package (the deterministic-only analyzers must stay
// silent there); every other fixture is analyzed as deterministic.
//
// Both `go test ./internal/analysis` and `pythia-vet -selfcheck` run this.

// FixtureReport is the outcome of one fixture package.
type FixtureReport struct {
	Name     string
	Problems []string
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// RunFixtures checks every fixture package under testdataDir/src, returning
// one report per fixture in name order.
func RunFixtures(root, modulePath, testdataDir string) ([]FixtureReport, error) {
	srcDir := filepath.Join(testdataDir, "src")
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return nil, err
	}
	relTestdata, err := filepath.Rel(root, testdataDir)
	if err != nil {
		return nil, err
	}
	loader := NewLoader(root, modulePath)
	var reports []FixtureReport
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		path := modulePath + "/" + filepath.ToSlash(relTestdata) + "/src/" + name
		report := FixtureReport{Name: name}
		pkg, err := loader.Load(path)
		if err != nil {
			report.Problems = append(report.Problems, fmt.Sprintf("load: %v", err))
			reports = append(reports, report)
			continue
		}
		pkg.Deterministic = !strings.HasSuffix(name, "nondet")
		report.Problems = checkFixture(pkg)
		reports = append(reports, report)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Name < reports[j].Name })
	return reports, nil
}

// wantEntry is one expected-diagnostic regexp at a file:line.
type wantEntry struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkFixture runs the suite over one loaded fixture and reconciles
// diagnostics with want comments.
func checkFixture(pkg *Package) []string {
	var problems []string
	wants := map[string][]*wantEntry{} // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						problems = append(problems, fmt.Sprintf("%s: bad want regexp %q: %v", key, arg[1], err))
						continue
					}
					wants[key] = append(wants[key], &wantEntry{re: re, raw: arg[1]})
				}
			}
		}
	}

	for _, d := range RunAll(pkg) {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("%s: unexpected diagnostic [%s] %s", key, d.Analyzer, d.Message))
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				problems = append(problems, fmt.Sprintf("%s: expected diagnostic matching %q was not reported", k, w.raw))
			}
		}
	}
	return problems
}
