package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mapiter forbids ranging over a map when the iteration order can reach an
// output in deterministic packages: appending to a slice, sending on a
// channel, writing to a builder/buffer, or emitting an event from inside the
// loop makes the result depend on Go's randomized map order. The standard
// collect-then-sort idiom is recognized: an append whose target is later
// passed to a sort call in the same function is allowed. Loops that are
// genuinely order-independent can carry //pythia:maporder-ok.
var Mapiter = &Analyzer{
	Name:          "mapiter",
	Doc:           "no output-reaching map iteration in deterministic packages",
	Deterministic: true,
	Run:           runMapiter,
}

// emitMethods are method names treated as order-sensitive sinks when called
// inside a map range: event emission and incremental output building.
var emitMethods = map[string]bool{
	"Record":      true,
	"Emit":        true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func runMapiter(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Suppressed(rng.Pos(), DirMapOrderOK) {
				return true
			}
			checkMapRange(pass, file, rng)
			return true
		})
	}
}

// checkMapRange scans one map-range body for order-sensitive sinks.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	enclosing := enclosingFunc(file, rng.Pos())
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send inside range over map: receive order depends on map iteration (iterate sorted keys, or annotate the declaration //pythia:maporder-ok)")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, enclosing, rng, s)
		case *ast.CallExpr:
			if name, ok := calleePackageFunc(info, s); ok && (name == "fmt" || name == "log") {
				pass.Reportf(s.Pos(), "%s call inside range over map: output order depends on map iteration (iterate sorted keys, or annotate the declaration //pythia:maporder-ok)", name)
				return true
			}
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && emitMethods[sel.Sel.Name] {
				if _, isMethod := info.Selections[sel]; isMethod {
					pass.Reportf(s.Pos(), "%s call inside range over map: emission order depends on map iteration (iterate sorted keys, or annotate the declaration //pythia:maporder-ok)", sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// checkMapRangeAssign flags slice appends (unless the target is sorted later
// in the enclosing function) and writes through a slice index.
func checkMapRangeAssign(pass *Pass, enclosing *ast.FuncDecl, rng *ast.RangeStmt, s *ast.AssignStmt) {
	info := pass.Pkg.Info
	for _, rhs := range s.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(info, call) || len(call.Args) == 0 {
			continue
		}
		target := refObject(info, call.Args[0])
		if target != nil && sortedInFunc(info, enclosing, target) {
			continue
		}
		name := exprString(call.Args[0])
		pass.Reportf(s.Pos(), "append to %s inside range over map: element order depends on map iteration (sort %s before use, iterate sorted keys, or annotate the declaration //pythia:maporder-ok)", name, name)
	}
	for _, lhs := range s.Lhs {
		idx, ok := lhs.(*ast.IndexExpr)
		if !ok {
			continue
		}
		if t := info.TypeOf(idx.X); t != nil {
			if _, isSlice := t.Underlying().(*types.Slice); isSlice {
				pass.Reportf(lhs.Pos(), "write through slice index inside range over map: element placement depends on map iteration (iterate sorted keys, or annotate the declaration //pythia:maporder-ok)")
			}
		}
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// refObject resolves an ident or selector expression to the object it
// names (variable or struct field), or nil.
func refObject(info *types.Info, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}

// sortedInFunc reports whether fn contains a call to a sort-like function
// (package sort or slices, or any callee whose name contains "sort") with
// target among its argument references — the collect-then-sort idiom.
func sortedInFunc(info *types.Info, fn *ast.FuncDecl, target types.Object) bool {
	if fn == nil || fn.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortish(info, call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if e, ok := an.(ast.Expr); ok && refObject(info, e) == target {
					found = true
					return false
				}
				return true
			})
		}
		return true
	})
	return found
}

// isSortish reports whether call's callee is from package sort or slices,
// or has "sort" in its name.
func isSortish(info *types.Info, call *ast.CallExpr) bool {
	if pkg, ok := calleePackageFunc(info, call); ok && (pkg == "sort" || pkg == "slices") {
		return true
	}
	var name string
	switch f := call.Fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// calleePackageFunc returns the package name when call invokes a
// package-level function through a package selector (e.g. fmt.Println →
// "fmt").
func calleePackageFunc(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pkgName, ok := info.Uses[x].(*types.PkgName); ok {
		return pkgName.Imported().Path(), true
	}
	return "", false
}

// exprString renders a short source form of simple expressions for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	}
	return "the slice"
}
