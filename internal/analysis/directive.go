package analysis

import (
	"go/ast"
	"strings"
)

// Directive grammar
//
//	//pythia:<name>[ <reason>]
//
// written as a doc-comment line on a top-level declaration (no space after
// //, like //go:noinline, so gofmt preserves it and godoc hides it). A
// directive applies to the annotated declaration only — never to the whole
// file or package. Recognized names:
//
//	wallclock-ok     this declaration may read the wall clock (detclock)
//	maporder-ok      this declaration's map iteration is order-independent (mapiter)
//	errcheck-ok      this declaration may discard checked-API errors (errdiscard)
//	noalloc          opt this function into the noalloc analyzer
//	lockorder-ok     this declaration's lock acquisitions are exempt from
//	                 the global order (lockorder)
//	atomicfield-ok   this declaration may access atomic fields plainly
//	                 (atomicfield)
//	goleak-ok        this declaration's goroutines are deliberately
//	                 unbounded (goleak); because one function often spawns
//	                 both bounded and unbounded goroutines, goleak also
//	                 accepts the directive as a comment on the line of (or
//	                 immediately above) a single `go` statement
//	metricsdrift-ok  this declaration's metric families are exempt from the
//	                 golden cross-check (metricsdrift)
const directivePrefix = "//pythia:"

// Escape directives each suppress one analyzer; noalloc is the opt-in
// annotation for the allocation analyzer.
const (
	DirWallclockOK    = "wallclock-ok"
	DirMapOrderOK     = "maporder-ok"
	DirErrcheckOK     = "errcheck-ok"
	DirNoalloc        = "noalloc"
	DirLockorderOK    = "lockorder-ok"
	DirAtomicfieldOK  = "atomicfield-ok"
	DirGoleakOK       = "goleak-ok"
	DirMetricsdriftOK = "metricsdrift-ok"
)

// declDirectives returns the //pythia: directive names on decl's doc comment.
func declDirectives(decl ast.Decl) []string {
	var doc *ast.CommentGroup
	switch d := decl.(type) {
	case *ast.FuncDecl:
		doc = d.Doc
	case *ast.GenDecl:
		doc = d.Doc
	}
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(rest, " ")
		name = strings.TrimSpace(name)
		if name != "" {
			out = append(out, name)
		}
	}
	return out
}

// hasDirective reports whether decl carries the named directive.
func hasDirective(decl ast.Decl, name string) bool {
	for _, d := range declDirectives(decl) {
		if d == name {
			return true
		}
	}
	return false
}
