// Package scheduler implements the paper's future-work direction (§7):
// using Pythia's page predictions to order a batch of queries so that
// consecutive queries overlap in the pages they read — each query then finds
// much of its working set already buffered (or prefetched) by its
// predecessor.
//
// The scheduler is deliberately simple and deterministic: a greedy
// nearest-neighbor chain over pairwise Jaccard similarities of the
// *predicted* page sets. It needs no ground truth — the whole point is that
// Pythia's predictions are available before execution — and degrades
// gracefully: with useless predictions it reduces to an arbitrary order.
package scheduler

import (
	"github.com/pythia-db/pythia/internal/obs"
	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/trace"
	"github.com/pythia-db/pythia/internal/workload"
)

// Prediction pairs a query instance with its predicted page set (sorted).
type Prediction struct {
	Instance *workload.Instance
	Pages    []storage.PageID
}

// Order returns a permutation of the predictions that greedily maximizes
// consecutive overlap: start from the query with the largest predicted set
// (the most to share), then repeatedly append the unscheduled query most
// similar to the last scheduled one. Ties break toward lower index, so the
// schedule is deterministic.
func Order(preds []Prediction) []int { return OrderObserved(preds, nil) }

// OrderObserved is Order with observability: each placement emits one
// SchedulerScheduled event carrying the chosen prediction's original index,
// so an attached event log reconstructs the schedule as it was built. A nil
// recorder costs one nil-check per placement.
func OrderObserved(preds []Prediction, rec obs.Recorder) []int {
	n := len(preds)
	if n == 0 {
		return nil
	}
	place := func(i int) {
		if rec != nil {
			rec.Record(obs.Event{Kind: obs.SchedulerScheduled, Query: int32(i)})
		}
	}
	used := make([]bool, n)
	order := make([]int, 0, n)

	first := 0
	for i := 1; i < n; i++ {
		if len(preds[i].Pages) > len(preds[first].Pages) {
			first = i
		}
	}
	order = append(order, first)
	used[first] = true
	place(first)

	for len(order) < n {
		last := order[len(order)-1]
		best, bestSim := -1, -1.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			sim := trace.Jaccard(preds[last].Pages, preds[i].Pages)
			if sim > bestSim {
				best, bestSim = i, sim
			}
		}
		order = append(order, best)
		used[best] = true
		place(best)
	}
	return order
}

// Apply returns the instances in scheduled order.
func Apply(preds []Prediction, order []int) []*workload.Instance {
	out := make([]*workload.Instance, len(order))
	for i, idx := range order {
		out[i] = preds[idx].Instance
	}
	return out
}

// ChainOverlap reports the mean Jaccard similarity between consecutive
// entries of the schedule — the quantity the greedy chain maximizes and a
// useful diagnostic for how much sharing a batch admits at all.
func ChainOverlap(preds []Prediction, order []int) float64 {
	if len(order) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(order); i++ {
		total += trace.Jaccard(preds[order[i-1]].Pages, preds[order[i]].Pages)
	}
	return total / float64(len(order)-1)
}
