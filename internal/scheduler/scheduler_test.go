package scheduler

import (
	"reflect"
	"testing"

	"github.com/pythia-db/pythia/internal/obs"

	"github.com/pythia-db/pythia/internal/storage"
	"github.com/pythia-db/pythia/internal/workload"
)

func pages(ns ...uint32) []storage.PageID {
	out := make([]storage.PageID, len(ns))
	for i, n := range ns {
		out[i] = storage.PageID{Object: 1, Page: storage.PageNum(n)}
	}
	return out
}

func preds(sets ...[]storage.PageID) []Prediction {
	out := make([]Prediction, len(sets))
	for i, s := range sets {
		out[i] = Prediction{Instance: &workload.Instance{}, Pages: s}
	}
	return out
}

func TestOrderIsPermutation(t *testing.T) {
	p := preds(pages(1, 2), pages(2, 3), pages(9), pages(1, 2, 3, 4))
	order := Order(p)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	seen := map[int]bool{}
	for _, i := range order {
		if i < 0 || i >= 4 || seen[i] {
			t.Fatalf("not a permutation: %v", order)
		}
		seen[i] = true
	}
}

func TestOrderChainsSimilarQueries(t *testing.T) {
	// Two "clusters": {0,1} share pages, {2,3} share pages, no overlap
	// between clusters. A good schedule keeps clusters contiguous.
	p := preds(
		pages(1, 2, 3),
		pages(2, 3, 4),
		pages(100, 101, 102),
		pages(101, 102, 103),
	)
	order := Order(p)
	cluster := func(i int) int { return i / 2 }
	switches := 0
	for i := 1; i < len(order); i++ {
		if cluster(order[i]) != cluster(order[i-1]) {
			switches++
		}
	}
	if switches != 1 {
		t.Fatalf("clusters split: order %v (%d switches)", order, switches)
	}
	// The greedy chain overlap beats the worst interleaving.
	interleaved := []int{0, 2, 1, 3}
	if ChainOverlap(p, order) <= ChainOverlap(p, interleaved) {
		t.Fatalf("greedy chain (%f) not better than interleaved (%f)",
			ChainOverlap(p, order), ChainOverlap(p, interleaved))
	}
}

func TestOrderStartsFromLargestSet(t *testing.T) {
	p := preds(pages(1), pages(1, 2, 3, 4, 5), pages(2))
	if order := Order(p); order[0] != 1 {
		t.Fatalf("order %v should start at the largest prediction", order)
	}
}

func TestOrderDeterministic(t *testing.T) {
	p := preds(pages(1, 2), pages(3, 4), pages(5, 6))
	a := Order(p)
	b := Order(p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("order not deterministic")
		}
	}
}

func TestOrderEdgeCases(t *testing.T) {
	if Order(nil) != nil {
		t.Fatal("empty order should be nil")
	}
	if got := Order(preds(pages(1))); len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton order = %v", got)
	}
	// Empty predictions still schedule (arbitrary but total).
	if got := Order(preds(nil, nil, nil)); len(got) != 3 {
		t.Fatalf("empty-prediction order = %v", got)
	}
}

func TestApply(t *testing.T) {
	a, b := &workload.Instance{}, &workload.Instance{}
	p := []Prediction{{Instance: a}, {Instance: b}}
	got := Apply(p, []int{1, 0})
	if got[0] != b || got[1] != a {
		t.Fatal("Apply order wrong")
	}
}

func TestChainOverlapBounds(t *testing.T) {
	p := preds(pages(1, 2), pages(1, 2))
	if ChainOverlap(p, []int{0, 1}) != 1 {
		t.Fatal("identical sets should chain at 1")
	}
	if ChainOverlap(p, []int{0}) != 0 {
		t.Fatal("single-entry chain should be 0")
	}
}

func TestOrderObservedAllEmptySets(t *testing.T) {
	// All-empty predicted sets: every pairwise Jaccard is 1 (empty == empty),
	// so the greedy chain reduces to index order — deterministic, total, and
	// fully reported through the recorder.
	log := obs.NewEventLog(0)
	order := OrderObserved(preds(nil, nil, nil, nil), log)
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Fatalf("all-empty order = %v, want %v", order, want)
	}
	if log.Len() != 4 {
		t.Fatalf("recorded %d placements, want 4", log.Len())
	}
	for i, e := range log.Events() {
		if e.Kind != obs.SchedulerScheduled || int(e.Query) != order[i] {
			t.Fatalf("event %d = %+v, want SchedulerScheduled for %d", i, e, order[i])
		}
	}
}

func TestOrderObservedSinglePrediction(t *testing.T) {
	log := obs.NewEventLog(0)
	order := OrderObserved(preds(pages(5, 6)), log)
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("singleton order = %v", order)
	}
	if log.Len() != 1 || log.Events()[0].Query != 0 {
		t.Fatalf("singleton placement events wrong: %+v", log.Events())
	}
}

func TestOrderDuplicateSetsTieBreakDeterministic(t *testing.T) {
	// Three identical sets plus the (larger) starting set: every candidate
	// ties at the same similarity, and strict > comparison breaks ties
	// toward the lowest index — so the schedule is index order after the
	// start, on every run.
	dup := pages(1, 2, 3)
	p := preds(dup, pages(1, 2, 3, 4, 5), dup, dup)
	want := Order(p)
	if want[0] != 1 {
		t.Fatalf("schedule did not start from the largest set: %v", want)
	}
	if !reflect.DeepEqual(want[1:], []int{0, 2, 3}) {
		t.Fatalf("duplicate-set tie-break not index order: %v", want)
	}
	for run := 0; run < 50; run++ {
		if got := Order(p); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d diverged: %v vs %v", run, got, want)
		}
	}
	// The observed event stream reconstructs exactly the returned order.
	log := obs.NewEventLog(0)
	got := OrderObserved(p, log)
	var fromEvents []int
	for _, e := range log.Events() {
		fromEvents = append(fromEvents, int(e.Query))
	}
	if !reflect.DeepEqual(fromEvents, got) {
		t.Fatalf("event stream %v does not reconstruct order %v", fromEvents, got)
	}
}
